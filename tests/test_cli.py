"""Tests for the CLI experiment runner."""

import pytest

import repro.api as api
from repro.cli import EXPERIMENTS, _format_prediction_row, main
from repro.parallel import get_default_jobs


class TestCli:
    def test_listing_returns_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "table4" in out

    def test_listing_includes_methods_and_model_commands(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "autopower" in out
        assert "mcpat-calib" in out
        assert "fit <method>" in out
        assert "predict --model" in out

    def test_unknown_experiment_exits_nonzero_with_message(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        assert "fig4" in err  # the message lists the valid names

    def test_jobs_flag_parses_and_propagates(self, monkeypatch, capsys):
        seen = {}

        def probe():
            seen["jobs"] = get_default_jobs()

        monkeypatch.setitem(EXPERIMENTS, "probe", (probe, "test probe"))
        assert main(["--jobs", "3", "probe"]) == 0
        assert seen["jobs"] == 3
        # The session default is restored once the run finishes.
        assert get_default_jobs() is None

    def test_jobs_flag_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            main(["--jobs", "two", "fig1"])

    def test_jobs_default_is_unset(self, monkeypatch):
        seen = {}

        def probe():
            seen["jobs"] = get_default_jobs()

        monkeypatch.setitem(EXPERIMENTS, "probe", (probe, "test probe"))
        assert main(["probe"]) == 0
        assert seen["jobs"] is None

    def test_registry_covers_paper_artifacts(self):
        for name in ("fig1", "fig4", "fig6", "fig7", "fig8", "table1", "table4"):
            assert name in EXPERIMENTS

    def test_fig1_runs_end_to_end(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "power-group breakdown" in out
        assert "clock + SRAM share" in out

    def test_table1_runs_end_to_end(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "240" in out
        assert "all shapes exact: True" in out


class TestModelCommands:
    def test_fit_then_predict_round_trip(self, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert main(["fit", "mcpat-calib", "--out", str(model_path)]) == 0
        assert model_path.exists()
        out = capsys.readouterr().out
        assert "McPAT-Calib" in out

        assert main(
            [
                "predict",
                "--model",
                str(model_path),
                "--config",
                "C8,C9",
                "--workload",
                "dhrystone,qsort",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("C8") == 2  # one row per (config, workload)
        assert out.count("qsort") == 2

    def test_fit_unknown_method_exits_two(self, tmp_path, capsys):
        assert main(["fit", "xgboost", "--out", str(tmp_path / "x.json")]) == 2
        err = capsys.readouterr().err
        assert "unknown method 'xgboost'" in err
        assert "autopower" in err  # the message lists the registry

    def test_fit_unknown_train_config_exits_two(self, tmp_path, capsys):
        assert main(
            ["fit", "mcpat", "--out", str(tmp_path / "x.json"), "--train", "C99"]
        ) == 2
        assert "C99" in capsys.readouterr().err

    def test_predict_missing_model_exits_two(self, tmp_path, capsys):
        assert main(["predict", "--model", str(tmp_path / "absent.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_predict_report_flag(self, tmp_path, capsys):
        model_path = tmp_path / "ap.json"
        assert main(["fit", "autopower", "--out", str(model_path)]) == 0
        capsys.readouterr()
        assert main(
            ["predict", "--model", str(model_path), "--report"]
        ) == 0
        out = capsys.readouterr().out
        assert "clock" in out
        assert "sram" in out

    def test_predict_report_unsupported_exits_two(self, tmp_path, capsys):
        model_path = tmp_path / "mc.json"
        assert main(["fit", "mcpat", "--out", str(model_path)]) == 0
        capsys.readouterr()
        assert main(["predict", "--model", str(model_path), "--report"]) == 2
        assert "reports" in capsys.readouterr().err

    def test_predict_unregistered_model_class_exits_two(
        self, tmp_path, monkeypatch, capsys
    ):
        # Regression: a loaded model whose class is not registered used to
        # escape as a raw KeyError traceback from api.spec_for.
        class Unregistered:
            pass

        monkeypatch.setattr(api, "load_model", lambda path: Unregistered())
        model_path = tmp_path / "m.json"
        model_path.write_text("{}")
        assert main(["predict", "--model", str(model_path)]) == 2
        err = capsys.readouterr().err
        assert "unregistered" in err
        assert "Unregistered" in err

    def test_prediction_row_prints_dash_for_missing_workload(self):
        # Regression: f"{None:>12s}" used to raise TypeError for
        # workload-free responses.
        response = api.PredictResponse(
            config_name="C8", workload_name=None, kind="total", total=123.456
        )
        row = _format_prediction_row(response)
        assert "C8" in row
        assert "-" in row
        assert "123.46" in row

    def test_serve_missing_model_exits_two(self, tmp_path, capsys):
        assert main(["serve", "--model", str(tmp_path / "absent.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_serve_rejects_bad_batching_knobs(self, tmp_path, capsys):
        model_path = tmp_path / "mc.json"
        assert main(["fit", "mcpat", "--out", str(model_path)]) == 0
        capsys.readouterr()
        assert main(
            ["serve", "--model", str(model_path), "--max-wait-ms", "-1"]
        ) == 2
        assert "max-wait-ms" in capsys.readouterr().err

    def test_serve_rejects_bad_resilience_knobs_before_model_load(
        self, tmp_path, capsys
    ):
        # Knob validation runs before the model file is touched: a bad
        # flag with an absent model reports the flag, not "cannot load".
        absent = str(tmp_path / "absent.json")
        for flags in (
            ["--queue-depth", "-1"],
            ["--default-deadline-ms", "0"],
            ["--drain-timeout", "-0.5"],
        ):
            assert main(["serve", "--model", absent, *flags]) == 2
            err = capsys.readouterr().err
            assert "queue-depth" in err
            assert "cannot load" not in err

    def test_serve_rejects_bad_fleet_knobs_before_model_load(
        self, tmp_path, capsys
    ):
        absent = str(tmp_path / "absent.json")
        for flags, expect in (
            (["--workers", "0"], "--workers"),
            (["--max-models", "0"], "--max-models"),
            (["--rate-limit", "0"], "--rate-limit"),
            (["--rate-limit", "1", "--rate-burst", "0"], "--rate-burst"),
            (["--rate-burst", "2"], "--rate-burst needs --rate-limit"),
        ):
            assert main(["serve", "--model", absent, *flags]) == 2
            err = capsys.readouterr().err
            assert expect in err
            assert "cannot load" not in err

    def test_serve_rejects_bad_supervision_knobs_before_fork(
        self, tmp_path, capsys
    ):
        # Validated before any model load or fork: a bad knob must fail
        # fast with exit 2, not bring up half a pool first.
        absent = str(tmp_path / "absent.json")
        for flags, expect in (
            (["--max-restarts", "-1"], "--max-restarts"),
            (["--restart-backoff-ms", "-5"], "--restart-backoff-ms"),
            (["--startup-timeout", "0"], "--startup-timeout"),
            (["--startup-timeout", "-3"], "--startup-timeout"),
        ):
            assert main(["serve", "--model", absent, *flags]) == 2
            err = capsys.readouterr().err
            assert expect in err
            assert "cannot load" not in err

    def test_serve_rejects_empty_auth_sources(self, tmp_path, capsys):
        absent = str(tmp_path / "absent.json")
        assert main(
            ["serve", "--model", absent, "--auth-token-env",
             "REPRO_NO_SUCH_TOKEN_VAR"]
        ) == 2
        assert "unset or empty" in capsys.readouterr().err
        empty = tmp_path / "tokens.txt"
        empty.write_text("# comments only\n")
        assert main(
            ["serve", "--model", absent, "--auth-token-file", str(empty)]
        ) == 2
        assert "no tokens" in capsys.readouterr().err

    def test_serve_rejects_bad_model_specs(self, tmp_path, capsys):
        absent = str(tmp_path / "absent.json")
        assert main(
            ["serve", "--model", f"a={absent}", "--model", f"a={absent}"]
        ) == 2
        assert "duplicate model name" in capsys.readouterr().err
        assert main(["serve", "--model", f"bad/name={absent}"]) == 2
        assert "model names" in capsys.readouterr().err
        assert main(
            ["serve", "--model", f"a={absent}", "--default-model", "b"]
        ) == 2
        assert "--default-model" in capsys.readouterr().err

    def test_listing_includes_serve_command(self, capsys):
        assert main([]) == 0
        assert "serve --model" in capsys.readouterr().out


class TestCacheCommand:
    @pytest.fixture()
    def cache_dir(self, tmp_path, monkeypatch):
        root = tmp_path / "flow-cache"
        monkeypatch.setenv("REPRO_FLOW_CACHE_DIR", str(root))
        return root

    def test_path_prints_the_root(self, cache_dir, capsys):
        assert main(["cache", "path"]) == 0
        assert capsys.readouterr().out.strip() == str(cache_dir)

    def test_stats_on_an_empty_store(self, cache_dir, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:  0" in out
        assert "enabled:  yes" in out

    def test_stats_reports_the_disable_flag(self, cache_dir, monkeypatch,
                                            capsys):
        monkeypatch.setenv("REPRO_NO_FLOW_CACHE", "1")
        assert main(["cache", "stats"]) == 0
        assert "REPRO_NO_FLOW_CACHE" in capsys.readouterr().out

    def test_clear_empties_a_populated_store(self, cache_dir, capsys):
        from repro.dse.cache import FlowDiskCache, content_key

        store = FlowDiskCache(str(cache_dir))
        store.put(content_key("a"), "x")
        store.put(content_key("b"), "y")
        assert main(["cache", "stats"]) == 0
        assert "entries:  2" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "cleared 2" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries:  0" in capsys.readouterr().out

    def test_unknown_action_exits_nonzero(self, cache_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "shrink"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_listing_includes_cache_command(self, capsys):
        assert main([]) == 0
        assert "cache {stats|path|clear}" in capsys.readouterr().out


class TestLintCommand:
    @pytest.fixture()
    def dirty_tree(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "ml" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstamp = time.time()\n")
        return tmp_path / "src"

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "src" / "repro" / "ml" / "ok.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("x = 1\n")
        assert main(["lint", str(tmp_path / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out
        assert "bad.py:2" in out

    def test_json_format(self, dirty_tree, capsys):
        import json

        assert main(["lint", "--format", "json", str(dirty_tree)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts_by_rule"] == {"DET002": 1}

    def test_github_format(self, dirty_tree, capsys):
        assert main(["lint", "--format", "github", str(dirty_tree)]) == 1
        assert capsys.readouterr().out.startswith("::error file=")

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "ASYNC001", "LOCK001", "ENV001", "LAYER001"):
            assert rule_id in out

    def test_bad_format_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--format", "xml"])
        assert excinfo.value.code == 2

    def test_repo_src_is_clean_through_the_cli(self, capsys):
        # The acceptance criterion: `python -m repro lint src` on this
        # repo exits 0 (run from the repo root, as CI does).
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        assert main(["lint", str(root / "src")]) == 0


class TestEnvCommand:
    def test_plain_table_lists_every_knob(self, capsys):
        assert main(["env"]) == 0
        out = capsys.readouterr().out
        for name in (
            "REPRO_JOBS",
            "REPRO_NO_KERNEL",
            "REPRO_NO_FLOW_CACHE",
            "REPRO_FLOW_CACHE_DIR",
            "REPRO_FLOW_CACHE_MAX_MB",
            "REPRO_CHAOS_DIR",
            "REPRO_BENCH_JSON",
        ):
            assert name in out

    def test_markdown_table(self, capsys):
        assert main(["env", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| Variable ")
        assert "`REPRO_JOBS`" in out

    def test_listing_includes_tooling_commands(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "lint [--format" in out
        assert "env [--markdown]" in out
