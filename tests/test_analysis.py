"""Tests for the project-invariant static analysis (repro.analysis).

Each rule gets a positive fixture (a snippet that must be flagged), a
negative fixture (the compliant idiom, which must stay clean), and a
suppression fixture.  Snippets are written under a temp dir shaped like
the real tree (``<tmp>/src/repro/<package>/mod.py``) so the module
inference — and with it the per-layer rule scoping — is exercised for
real.  The suite ends with the self-check: the repo's own ``src/`` tree
must lint clean.
"""

import pathlib

from repro.analysis import (
    PARSE_RULE_ID,
    RULES,
    SUPPRESSION_RULE_ID,
    format_findings,
    lint_file,
    lint_paths,
    module_for_path,
    rule_table,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path, relpath, source):
    """Write ``source`` at ``<tmp>/<relpath>`` and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(str(path))


def rule_ids(findings):
    return [f.rule for f in findings]


class TestEngine:
    def test_module_inference_from_fixture_paths(self, tmp_path):
        assert module_for_path("src/repro/ml/gbm.py") == "repro.ml.gbm"
        assert module_for_path("src/repro/__init__.py") == "repro"
        assert (
            module_for_path(str(tmp_path / "src/repro/core/x.py"))
            == "repro.core.x"
        )
        assert module_for_path("scripts/smoke_serve.py") is None

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/ml/bad.py", "def f(:\n")
        assert rule_ids(findings) == [PARSE_RULE_ID]

    def test_suppression_drops_the_finding(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/s.py",
            "import numpy as np\n"
            "rng = np.random.default_rng()"
            "  # repro: noqa[DET001] -- test fixture\n",
        )
        assert findings == []

    def test_unused_suppression_is_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/u.py",
            "x = 1  # repro: noqa[DET001] -- nothing here triggers DET001\n",
        )
        assert rule_ids(findings) == [SUPPRESSION_RULE_ID]
        assert "unused suppression" in findings[0].message

    def test_unknown_rule_id_in_noqa_is_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "src/repro/ml/t.py", "x = 1  # repro: noqa[DET999]\n"
        )
        assert rule_ids(findings) == [SUPPRESSION_RULE_ID]
        assert "unknown rule id" in findings[0].message

    def test_suppression_on_wrong_line_does_not_apply(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/w.py",
            "# repro: noqa[DET001] -- wrong line: the read is below\n"
            "import numpy as np\n"
            "rng = np.random.default_rng()\n",
        )
        assert sorted(rule_ids(findings)) == ["DET001", SUPPRESSION_RULE_ID]

    def test_lint_paths_walks_and_sorts(self, tmp_path):
        (tmp_path / "src/repro/ml").mkdir(parents=True)
        (tmp_path / "src/repro/ml/a.py").write_text("import time\ntime.time()\n")
        (tmp_path / "src/repro/ml/b.py").write_text("x = 1\n")
        findings = lint_paths([str(tmp_path / "src")])
        assert rule_ids(findings) == ["DET002"]

    def test_rule_table_lists_every_rule(self):
        table = rule_table()
        for rule_id in (*RULES, PARSE_RULE_ID, SUPPRESSION_RULE_ID):
            assert rule_id in table


class TestDeterminismRules:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/r.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert rule_ids(findings) == ["DET001"]

    def test_seeded_default_rng_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/r.py",
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "rng2 = np.random.default_rng(seed=7)\n",
        )
        assert findings == []

    def test_global_rng_state_flagged_even_with_args(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/core/g.py",
            "import numpy as np\nnoise = np.random.rand(3)\n",
        )
        assert rule_ids(findings) == ["DET001"]

    def test_random_module_and_aliased_import_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/baselines/a.py",
            "import random\n"
            "from numpy.random import default_rng as mk\n"
            "r = random.Random()\n"
            "g = mk()\n",
        )
        assert rule_ids(findings) == ["DET001", "DET001"]

    def test_wall_clock_flagged_monotonic_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/core/t.py",
            "import time\n"
            "stamp = time.time()\n"
            "start = time.monotonic()\n"
            "lap = time.perf_counter()\n",
        )
        assert rule_ids(findings) == ["DET002"]
        assert findings[0].line == 2

    def test_datetime_now_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/dse/cache.py",
            "from datetime import datetime\nwhen = datetime.now()\n",
        )
        assert rule_ids(findings) == ["DET002"]

    def test_set_into_ordered_product_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/s.py",
            "names = list({'a', 'b'})\n"
            "for n in set(names):\n"
            "    pass\n"
            "pairs = [x for x in frozenset(names)]\n",
        )
        assert rule_ids(findings) == ["DET003", "DET003", "DET003"]

    def test_sorted_set_is_the_blessed_idiom(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/s.py",
            "names = sorted({'a', 'b'})\n"
            "for n in sorted(set(names)):\n"
            "    pass\n"
            "members = {'x', 'y'}\n"
            "ok = 'x' in members\n",
        )
        assert findings == []

    def test_set_assigned_alias_is_tracked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/al.py",
            "seen = set()\nitems = list(seen)\n",
        )
        assert rule_ids(findings) == ["DET003"]

    def test_scope_excludes_serving_and_scripts(self, tmp_path):
        source = "import time\nstamp = time.time()\n"
        assert lint_snippet(tmp_path, "src/repro/serving/t.py", source) == []
        assert lint_snippet(tmp_path, "scripts/t.py", source) == []


class TestAsyncRules:
    def test_blocking_call_in_async_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/serving/g.py",
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n",
        )
        assert rule_ids(findings) == ["ASYNC001"]
        assert "handler" in findings[0].message

    def test_nested_sync_def_is_the_executor_idiom(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/serving/g.py",
            "import asyncio, time\n"
            "async def handler():\n"
            "    def work():\n"
            "        time.sleep(1)\n"
            "        return open('x').read()\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, work)\n",
        )
        assert findings == []

    def test_open_in_async_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/serving/g.py",
            "async def handler():\n"
            "    with open('model.json') as fh:\n"
            "        return fh.read()\n",
        )
        assert rule_ids(findings) == ["ASYNC001"]

    def test_direct_model_call_in_async_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/serving/b.py",
            "async def flush(self, batch):\n"
            "    return self.service.submit_many(batch)\n",
        )
        assert rule_ids(findings) == ["ASYNC002"]

    def test_partial_reference_into_executor_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/serving/b.py",
            "from functools import partial\n"
            "async def flush(self, loop, batch):\n"
            "    fn = partial(self.service.submit_many, batch)\n"
            "    return await loop.run_in_executor(None, fn)\n",
        )
        assert findings == []

    def test_blocking_in_sync_code_is_fine(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/serving/w.py",
            "import time\n"
            "def worker_loop():\n"
            "    time.sleep(0.01)\n",
        )
        assert findings == []

    def test_scope_is_serving_only(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/dse/j.py",
            "import time\n"
            "async def poll():\n"
            "    time.sleep(1)\n",
        )
        assert findings == []


LOCKED_CLASS = """\
import threading

class Service:
    def __init__(self):
        self.count = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def {name}(self):
{body}
"""


class TestLockRules:
    def test_mutation_outside_lock_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/api/s.py",
            LOCKED_CLASS.format(name="bump", body="        self.count += 1\n"),
        )
        assert rule_ids(findings) == ["LOCK001"]
        assert "_lock" in findings[0].message

    def test_mutation_under_lock_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/api/s.py",
            LOCKED_CLASS.format(
                name="bump",
                body="        with self._lock:\n            self.count += 1\n",
            ),
        )
        assert findings == []

    def test_locked_suffix_method_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/api/s.py",
            LOCKED_CLASS.format(
                name="bump_locked", body="        self.count += 1\n"
            ),
        )
        assert findings == []

    def test_field_of_guarded_attribute_is_checked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/api/s.py",
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.stats = object()  # guarded-by: _lock\n"
            "        self._lock = threading.Lock()\n"
            "    def record(self):\n"
            "        self.stats.requests += 1\n",
        )
        assert rule_ids(findings) == ["LOCK001"]

    def test_loop_sentinel_requires_async(self, tmp_path):
        source = (
            "class B:\n"
            "    def __init__(self):\n"
            "        self.flushes = 0  # guarded-by: loop\n"
            "    {kind} bump(self):\n"
            "        self.flushes += 1\n"
        )
        assert rule_ids(
            lint_snippet(
                tmp_path, "src/repro/serving/b.py", source.format(kind="def")
            )
        ) == ["LOCK001"]
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/serving/b2.py",
                source.format(kind="async def"),
            )
            == []
        )

    def test_dangling_annotation_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/api/d.py",
            "class S:\n"
            "    # guarded-by: _lock\n"
            "    def method(self):\n"
            "        pass\n",
        )
        assert rule_ids(findings) == ["LOCK002"]

    def test_init_and_setstate_are_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/api/p.py",
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.n = 0  # guarded-by: _lock\n"
            "        self._lock = threading.Lock()\n"
            "    def __setstate__(self, state):\n"
            "        self.n = 0\n"
            "        self._lock = threading.Lock()\n",
        )
        assert findings == []


class TestEnvRules:
    def test_literal_repro_read_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/k.py",
            "import os\n"
            "a = os.environ.get('REPRO_NO_KERNEL')\n"
            "b = os.getenv('REPRO_JOBS')\n"
            "c = os.environ['REPRO_FLOW_CACHE_DIR']\n",
        )
        assert rule_ids(findings) == ["ENV001", "ENV001", "ENV001"]

    def test_non_repro_literals_are_third_party_contracts(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/k.py",
            "import os\n"
            "cc = os.environ.get('CC', 'cc')\n"
            "xdg = os.getenv('XDG_CACHE_HOME')\n",
        )
        assert findings == []

    def test_dynamic_key_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/serving/a.py",
            "import os\n"
            "def read(name):\n"
            "    return os.environ.get(name, '')\n",
        )
        assert rule_ids(findings) == ["ENV002"]

    def test_registry_module_itself_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/env.py",
            "import os\nvalue = os.environ.get('REPRO_JOBS')\n",
        )
        assert findings == []

    def test_environ_writes_are_not_reads(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/w.py",
            "import os\nos.environ['REPRO_NO_KERNEL'] = '1'\n",
        )
        assert findings == []


class TestLayerRule:
    def test_upward_import_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/m.py",
            "from repro.serving.gateway import Gateway\n",
        )
        assert rule_ids(findings) == ["LAYER001"]
        assert "layer" in findings[0].message

    def test_downward_and_lateral_imports_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/serving/g.py",
            "import repro.api as api\n"
            "from repro.ml import gbm\n"
            "from repro.serving.batcher import MicroBatcher\n",
        )
        assert findings == []

    def test_module_overrides_sit_below_their_package(self, tmp_path):
        # dse.cache is layer 1 storage: importable from vlsi (layer 3)...
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/vlsi/f.py",
                "from repro.dse.cache import FlowDiskCache\n",
            )
            == []
        )
        # ...while the rest of dse (layer 5) stays off-limits.
        findings = lint_snippet(
            tmp_path,
            "src/repro/vlsi/f.py",
            "from repro.dse.jobs import DseJobManager\n",
        )
        assert rule_ids(findings) == ["LAYER001"]

    def test_root_package_import_is_upward_from_core(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "src/repro/core/c.py", "import repro\n"
        )
        assert rule_ids(findings) == ["LAYER001"]

    def test_stdlib_and_third_party_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ml/m.py",
            "import os\nimport numpy as np\nfrom collections import Counter\n",
        )
        assert findings == []


class TestFormats:
    def _one_finding(self, tmp_path):
        return lint_snippet(
            tmp_path,
            "src/repro/ml/f.py",
            "import time\nstamp = time.time()\n",
        )

    def test_text_format(self, tmp_path):
        text = format_findings(self._one_finding(tmp_path), "text")
        assert "DET002" in text
        assert "1 finding (DET002 x1)" in text

    def test_json_format_is_machine_readable(self, tmp_path):
        import json

        payload = json.loads(
            format_findings(self._one_finding(tmp_path), "json")
        )
        assert payload["count"] == 1
        assert payload["counts_by_rule"] == {"DET002": 1}
        assert payload["findings"][0]["rule"] == "DET002"
        assert payload["findings"][0]["line"] == 2

    def test_github_format_emits_workflow_commands(self, tmp_path):
        out = format_findings(self._one_finding(tmp_path), "github")
        assert out.startswith("::error file=")
        assert "title=DET002" in out

    def test_empty_run_says_clean(self):
        assert "clean" in format_findings([], "text")
        assert format_findings([], "github") == ""


class TestSelfClean:
    def test_repo_source_tree_is_lint_clean(self):
        findings = lint_paths([str(REPO_ROOT / "src")])
        assert findings == [], format_findings(findings, "text")

    def test_scripts_and_benchmarks_are_lint_clean(self):
        findings = lint_paths(
            [str(REPO_ROOT / "scripts"), str(REPO_ROOT / "benchmarks")]
        )
        assert findings == [], format_findings(findings, "text")
