"""Tests for fleet-scale serving: multi-model routing, hot reload,
auth, per-client rate limiting, and the worker-pool plumbing.

The core contracts under test:

* responses routed through ``POST /models/<name>/predict`` are
  bitwise-equal to direct :meth:`PredictionService.submit_many` calls
  against that model,
* ``PUT /models/<name>`` swaps atomically and ``DELETE`` drains, with
  the LRU bound evicting only non-default models,
* auth rejections (401/403) happen before any model work and bearer
  tokens never appear in ``/stats`` or other payloads,
* one client exhausting its rate-limit bucket answers 429 +
  ``Retry-After`` while other clients keep being served bitwise.
"""

from __future__ import annotations

import http.client
import json
import os

import pytest

import repro.api as api
from repro.serving import (
    AuthError,
    Authenticator,
    GatewayThread,
    ModelFleet,
    RateLimitedError,
    RateLimiter,
)
from repro.serving import wire
from repro.serving.auth import client_digest
from repro.serving.fleet import (
    FleetError,
    _read_announce,
    format_announce,
    merge_stats,
    parse_announce,
    validate_model_name,
    write_worker_announce,
)


@pytest.fixture(scope="module")
def mcpat_model(flow):
    return api.fit("mcpat", flow=flow)


@pytest.fixture(scope="module")
def request_objs(flow, test_configs, workloads):
    """Wire-encoded total-power requests (3 configs x 2 workloads)."""
    return [
        wire.encode_request(
            api.PredictRequest(
                config=c, events=flow.run(c, w).events, workload=w
            )
        )
        for c in test_configs[:3]
        for w in workloads[:2]
    ]


def _expected_totals(model, request_objs):
    """Ground truth: direct service calls for the same wire requests."""
    service = api.PredictionService(model)
    responses = service.submit_many(
        [wire.decode_request(obj) for obj in request_objs]
    )
    return [float(r.total) for r in responses]


def _http(port, method, path, payload=None, token=None):
    """One HTTP round trip; returns (status, headers, decoded body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = token
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body=body, headers=headers)
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    return (
        response.status,
        {k.lower(): v for k, v in response.getheaders()},
        json.loads(raw.decode("utf-8")),
    )


def _two_model_fleet(autopower2, mcpat_model, **kwargs):
    kwargs.setdefault("max_wait_ms", 0.5)
    fleet = ModelFleet(**kwargs)
    fleet.add_model("default", autopower2)
    fleet.add_model("mcpat", mcpat_model)
    return fleet


# ----------------------------------------------------------------------
# Multi-model routing + admin over HTTP.


@pytest.fixture(scope="module")
def fleet_gateway(autopower2, mcpat_model):
    """A read-only two-model gateway (routing tests; no admin mutation)."""
    with GatewayThread(
        _two_model_fleet(autopower2, mcpat_model, max_models=4)
    ) as handle:
        yield handle


class TestModelRouting:
    def test_named_route_is_bitwise_equal_to_direct(
        self, fleet_gateway, mcpat_model, request_objs
    ):
        status, _h, body = _http(
            fleet_gateway.port, "POST", "/models/mcpat/predict", request_objs
        )
        assert status == 200
        assert [r["total"] for r in body] == _expected_totals(
            mcpat_model, request_objs
        )

    def test_legacy_predict_routes_to_default(
        self, fleet_gateway, autopower2, request_objs
    ):
        status, _h, legacy = _http(
            fleet_gateway.port, "POST", "/predict", request_objs
        )
        assert status == 200
        status, _h, named = _http(
            fleet_gateway.port, "POST", "/models/default/predict", request_objs
        )
        assert status == 200
        assert legacy == named
        assert [r["total"] for r in legacy] == _expected_totals(
            autopower2, request_objs
        )

    def test_unknown_model_is_404(self, fleet_gateway, request_objs):
        status, _h, body = _http(
            fleet_gateway.port, "POST", "/models/nope/predict",
            request_objs[:1],
        )
        assert status == 404
        assert "nope" in body["error"]["message"]

    def test_models_listing(self, fleet_gateway):
        status, _h, body = _http(fleet_gateway.port, "GET", "/models")
        assert status == 200
        assert body["default_model"] == "default"
        assert set(body["models"]) == {"default", "mcpat"}
        assert body["models"]["mcpat"]["kinds"] == ["total"]

    def test_single_model_info(self, fleet_gateway):
        status, _h, body = _http(fleet_gateway.port, "GET", "/models/mcpat")
        assert status == 200
        assert body["name"] == "mcpat"
        assert body["generation"] == 1

    def test_healthz_and_stats_carry_fleet_state(self, fleet_gateway):
        status, _h, health = _http(fleet_gateway.port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert set(health["models"]) == {"default", "mcpat"}
        status, _h, stats = _http(fleet_gateway.port, "GET", "/stats")
        assert status == 200
        # Back-compat top-level blocks stay, the fleet block is new.
        assert set(stats) >= {"service", "gateway", "resilience", "fleet"}
        assert stats["fleet"]["loaded"] == 2
        assert set(stats["fleet"]["models"]) == {"default", "mcpat"}


class TestModelAdmin:
    def test_put_load_route_reload_delete(
        self, autopower2, mcpat_model, request_objs, tmp_path
    ):
        path = tmp_path / "extra.json"
        api.save_model(mcpat_model, path)
        with GatewayThread(
            _two_model_fleet(autopower2, mcpat_model, max_models=4)
        ) as handle:
            status, _h, body = _http(
                handle.port, "PUT", "/models/extra", {"path": str(path)}
            )
            assert status == 200
            assert body["replaced"] is False
            assert body["generation"] == 1
            status, _h, predictions = _http(
                handle.port, "POST", "/models/extra/predict", request_objs
            )
            assert status == 200
            assert [r["total"] for r in predictions] == _expected_totals(
                mcpat_model, request_objs
            )
            # Hot reload: same name again bumps the generation.
            status, _h, body = _http(
                handle.port, "PUT", "/models/extra", {"path": str(path)}
            )
            assert status == 200
            assert body["replaced"] is True
            assert body["generation"] == 2
            # Drain-then-unload; the route 404s afterwards.
            status, _h, body = _http(handle.port, "DELETE", "/models/extra")
            assert status == 200
            assert body["unloaded"] is True
            status, _h, _body = _http(
                handle.port, "POST", "/models/extra/predict", request_objs[:1]
            )
            assert status == 404
            status, _h, _body = _http(handle.port, "DELETE", "/models/extra")
            assert status == 404

    def test_put_envelope_body(self, autopower2, mcpat_model, request_objs):
        envelope = api.model_to_envelope(mcpat_model)
        with GatewayThread(
            _two_model_fleet(autopower2, mcpat_model, max_models=4)
        ) as handle:
            status, _h, body = _http(
                handle.port, "PUT", "/models/inline", envelope
            )
            assert status == 200
            assert body["source"] == "envelope"
            status, _h, predictions = _http(
                handle.port, "POST", "/models/inline/predict", request_objs
            )
            assert status == 200
            assert [r["total"] for r in predictions] == _expected_totals(
                mcpat_model, request_objs
            )

    def test_put_bad_bodies_are_400(self, autopower2, mcpat_model, tmp_path):
        with GatewayThread(
            _two_model_fleet(autopower2, mcpat_model)
        ) as handle:
            for payload in (
                {"path": ""},
                {"nonsense": 1},
                {"path": str(tmp_path / "missing.json")},
                [1, 2],
            ):
                status, _h, body = _http(
                    handle.port, "PUT", "/models/bad", payload
                )
                assert status == 400, payload
                assert "error" in body
            status, _h, body = _http(
                handle.port, "PUT", f"/models/{'x' * 65}", {"path": "x"}
            )
            assert status == 400  # name validated before any load work
            assert "model names" in body["error"]["message"]

    def test_lru_eviction_spares_default(
        self, autopower2, mcpat_model, request_objs, tmp_path
    ):
        path = tmp_path / "m.json"
        api.save_model(mcpat_model, path)
        with GatewayThread(
            _two_model_fleet(autopower2, mcpat_model, max_models=2)
        ) as handle:
            # Touch mcpat so it is most-recently-routed ... and then
            # load a third model: mcpat is still the only evictable one.
            status, _h, _body = _http(
                handle.port, "POST", "/models/mcpat/predict", request_objs[:1]
            )
            assert status == 200
            status, _h, body = _http(
                handle.port, "PUT", "/models/third", {"path": str(path)}
            )
            assert status == 200
            assert body["evicted"] == ["mcpat"]
            status, _h, listing = _http(handle.port, "GET", "/models")
            assert set(listing["models"]) == {"default", "third"}
            status, _h, stats = _http(handle.port, "GET", "/stats")
            assert stats["fleet"]["evictions"] == 1


# ----------------------------------------------------------------------
# Auth + per-client rate limiting.


TOKEN_A = "alpha-secret-token"
TOKEN_B = "beta-secret-token"


@pytest.fixture(scope="module")
def auth_gateway(autopower2):
    service = api.PredictionService(autopower2)
    with GatewayThread(
        service,
        max_wait_ms=0.5,
        auth=Authenticator([TOKEN_A, TOKEN_B]),
    ) as handle:
        yield handle


class TestAuthOverHttp:
    def _model_calls(self, handle):
        _s, _h, stats = _http(
            handle.port, "GET", "/stats", token=f"Bearer {TOKEN_A}"
        )
        return stats["service"]["model_calls"]

    def test_missing_token_is_401_without_model_work(
        self, auth_gateway, request_objs
    ):
        before = self._model_calls(auth_gateway)
        status, headers, body = _http(
            auth_gateway.port, "POST", "/predict", request_objs
        )
        assert status == 401
        assert headers.get("www-authenticate") == "Bearer"
        assert "Authorization" in body["error"]["message"]
        assert self._model_calls(auth_gateway) == before

    def test_malformed_scheme_is_401(self, auth_gateway, request_objs):
        status, _h, _body = _http(
            auth_gateway.port, "POST", "/predict", request_objs,
            token=f"Basic {TOKEN_A}",
        )
        assert status == 401

    def test_wrong_token_is_403_without_model_work(
        self, auth_gateway, request_objs
    ):
        before = self._model_calls(auth_gateway)
        status, _h, _body = _http(
            auth_gateway.port, "POST", "/predict", request_objs,
            token="Bearer wrong-token",
        )
        assert status == 403
        assert self._model_calls(auth_gateway) == before

    def test_healthz_stays_open(self, auth_gateway):
        status, _h, body = _http(auth_gateway.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_good_token_serves_bitwise(
        self, auth_gateway, autopower2, request_objs
    ):
        status, _h, body = _http(
            auth_gateway.port, "POST", "/predict", request_objs,
            token=f"Bearer {TOKEN_A}",
        )
        assert status == 200
        assert [r["total"] for r in body] == _expected_totals(
            autopower2, request_objs
        )

    def test_tokens_never_echo_in_stats(self, auth_gateway):
        status, _h, stats = _http(
            auth_gateway.port, "GET", "/stats", token=f"Bearer {TOKEN_A}"
        )
        assert status == 200
        dumped = json.dumps(stats)
        assert TOKEN_A not in dumped and TOKEN_B not in dumped
        assert stats["auth"]["enabled"] is True
        assert stats["auth"]["accepted"] >= 1
        assert stats["auth"]["rejected_missing"] >= 1
        assert stats["auth"]["rejected_bad"] >= 1


class TestRateLimitOverHttp:
    def test_one_client_limited_while_other_serves_bitwise(
        self, autopower2, request_objs
    ):
        service = api.PredictionService(autopower2)
        with GatewayThread(
            service,
            max_wait_ms=0.0,
            auth=Authenticator([TOKEN_A, TOKEN_B]),
            # Frozen clock: no refill during the test, burst of 2.
            rate_limiter=RateLimiter(1.0, burst=2, clock=lambda: 0.0),
        ) as handle:
            one = request_objs[:1]
            for _ in range(2):  # burst
                status, _h, _b = _http(
                    handle.port, "POST", "/predict", one,
                    token=f"Bearer {TOKEN_A}",
                )
                assert status == 200
            status, headers, body = _http(
                handle.port, "POST", "/predict", one,
                token=f"Bearer {TOKEN_A}",
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert "rate limit" in body["error"]["message"]
            # The other client's bucket is untouched: bitwise service
            # (a list of N costs N tokens, so stay within the burst).
            batch = request_objs[:2]
            status, _h, body = _http(
                handle.port, "POST", "/predict", batch,
                token=f"Bearer {TOKEN_B}",
            )
            assert status == 200
            assert [r["total"] for r in body] == _expected_totals(
                autopower2, batch
            )
            status, _h, stats = _http(
                handle.port, "GET", "/stats", token=f"Bearer {TOKEN_B}"
            )
            assert stats["rate_limit"]["limited"] == 1
            limited_by = stats["rate_limit"]["limited_by_client"]
            assert limited_by == {client_digest(TOKEN_A): 1}
            assert TOKEN_A not in json.dumps(stats)


# ----------------------------------------------------------------------
# Unit layer: authenticator, limiter, merge/announce helpers.


class TestAuthenticator:
    def test_disabled_admits_everything(self):
        auth = Authenticator()
        assert auth.enabled is False
        assert auth.check(None) is None

    def test_check_statuses(self):
        auth = Authenticator(["tok"])
        with pytest.raises(AuthError) as missing:
            auth.check(None)
        assert missing.value.status == 401
        with pytest.raises(AuthError) as malformed:
            auth.check("Bearer ")
        assert malformed.value.status == 401
        with pytest.raises(AuthError) as wrong:
            auth.check("Bearer nope")
        assert wrong.value.status == 403
        assert auth.check("Bearer tok") == client_digest("tok")
        assert auth.check("bearer tok") == client_digest("tok")
        assert auth.snapshot() == {
            "enabled": True,
            "tokens": 1,
            "accepted": 2,
            "rejected_missing": 2,
            "rejected_bad": 1,
        }

    def test_from_sources_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_TOKEN", "envtok")
        auth = Authenticator.from_sources(env="REPRO_TEST_TOKEN")
        assert auth.check("Bearer envtok") == client_digest("envtok")
        monkeypatch.delenv("REPRO_TEST_TOKEN")
        with pytest.raises(ValueError, match="unset or empty"):
            Authenticator.from_sources(env="REPRO_TEST_TOKEN")

    def test_from_sources_file(self, tmp_path):
        token_file = tmp_path / "tokens.txt"
        token_file.write_text("# ops\nfirst\n\nsecond\n")
        auth = Authenticator.from_sources(file=token_file)
        assert auth.check("Bearer first")
        assert auth.check("Bearer second")
        (tmp_path / "empty.txt").write_text("# nothing\n")
        with pytest.raises(ValueError, match="no tokens"):
            Authenticator.from_sources(file=tmp_path / "empty.txt")

    def test_digest_is_not_the_token(self):
        digest = client_digest("super-secret")
        assert digest != "super-secret"
        assert len(digest) == 12


class TestRateLimiter:
    def test_disabled_is_noop(self):
        limiter = RateLimiter(None)
        limiter.admit("anyone", cost=10**6)
        assert limiter.snapshot()["enabled"] is False

    def test_burst_refill_and_retry_after(self):
        now = [0.0]
        limiter = RateLimiter(2.0, burst=2, clock=lambda: now[0])
        limiter.admit("a")
        limiter.admit("a")
        with pytest.raises(RateLimitedError) as exc:
            limiter.admit("a")
        assert exc.value.status == 429
        assert exc.value.retry_after == 1
        limiter.admit("b")  # independent bucket
        now[0] = 1.0  # 2 tokens refilled at rate 2/s
        limiter.admit("a")
        limiter.admit("a")
        snap = limiter.snapshot()
        assert snap["allowed"] == 5
        assert snap["limited"] == 1
        assert snap["limited_by_client"] == {"a": 1}

    def test_burst_is_a_ceiling(self):
        now = [0.0]
        limiter = RateLimiter(10.0, burst=1, clock=lambda: now[0])
        limiter.admit("a")
        now[0] = 100.0  # a long idle period must not bank extra tokens
        limiter.admit("a")
        with pytest.raises(RateLimitedError):
            limiter.admit("a")

    def test_least_recently_seen_eviction(self):
        limiter = RateLimiter(1.0, burst=1, clock=lambda: 0.0, max_clients=2)
        limiter.admit("a")
        limiter.admit("b")
        limiter.admit("c")  # evicts a
        assert limiter.snapshot()["clients_tracked"] == 2
        limiter.admit("a")  # fresh bucket again (burst restored)

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(0.0)
        with pytest.raises(ValueError):
            RateLimiter(1.0, burst=0)
        with pytest.raises(ValueError):
            RateLimiter(1.0, max_clients=0)


class TestMergeStats:
    def test_numeric_leaves_sum(self):
        merged = merge_stats([{"a": 1, "b": 2.5}, {"a": 3, "b": 0.5}])
        assert merged == {"a": 4, "b": 3.0}

    def test_dicts_merge_recursively_over_key_union(self):
        merged = merge_stats(
            [{"x": {"n": 1}}, {"x": {"n": 2, "extra": 5}}]
        )
        assert merged == {"x": {"n": 3, "extra": 5}}

    def test_agreeing_non_numeric_kept_disagreeing_dropped(self):
        merged = merge_stats(
            [
                {"status": "ok", "model": "A", "on": True},
                {"status": "ok", "model": "B", "on": False},
            ]
        )
        assert merged["status"] == "ok"
        assert merged["model"] is None
        assert merged["on"] is None  # bools are not summed

    def test_empty_input(self):
        assert merge_stats([]) == {}
        assert merge_stats([None, {"a": 1}]) == {"a": 1}

    def test_key_missing_in_one_snapshot(self):
        # The key union drives the merge: a key one worker lacks still
        # sums over the workers that have it.
        merged = merge_stats([{"a": 1, "only": 7}, {"a": 2}])
        assert merged == {"a": 3, "only": 7}

    def test_none_vs_number_is_dropped(self):
        merged = merge_stats([{"deadline_ms": None}, {"deadline_ms": 250.0}])
        assert merged["deadline_ms"] is None
        # ... and agreeing Nones survive as None, not as a crash.
        assert merge_stats([{"x": None}, {"x": None}])["x"] is None

    def test_bool_vs_int_collision_is_dropped(self):
        # True == 1 in Python; the merged view must not launder one
        # worker's bool into another's counter (or vice versa).
        merged = merge_stats([{"flag": True}, {"flag": 1}])
        assert merged["flag"] is None

    def test_dict_vs_scalar_collision_is_dropped(self):
        merged = merge_stats([{"x": {"n": 1}}, {"x": 3}])
        assert merged["x"] is None


class TestAnnounce:
    def test_round_trip(self):
        line = format_announce(
            "127.0.0.1", 8123, workers=2,
            control="http://127.0.0.1:9001", pid=42,
        )
        parsed = parse_announce(f"noise\n{line}\nmore noise\n")
        assert parsed == {
            "host": "127.0.0.1",
            "port": 8123,
            "workers": 2,
            "control": "http://127.0.0.1:9001",
            "pid": 42,
        }

    def test_single_worker_defaults(self):
        parsed = parse_announce(format_announce("0.0.0.0", 80))
        assert parsed["workers"] == 1
        assert parsed["control"] is None
        assert parsed["pid"] == os.getpid()

    def test_absent_announce_is_none(self):
        assert parse_announce("serving stuff on http://x:1\n") is None

    def test_worker_pipe_round_trip(self):
        read_fd, write_fd = os.pipe()
        try:
            write_worker_announce(write_fd, 8123, 9001)
            announce = _read_announce(read_fd)
        finally:
            os.close(read_fd)
        assert announce == {
            "pid": os.getpid(),
            "port": 8123,
            "control_port": 9001,
        }

    def test_read_announce_timeout_on_silent_pipe(self):
        # A worker hung in startup writes nothing: the deadline must
        # fire instead of blocking the parent forever.
        read_fd, write_fd = os.pipe()
        try:
            with pytest.raises(TimeoutError):
                _read_announce(read_fd, timeout=0.05)
        finally:
            os.close(read_fd)
            os.close(write_fd)

    def test_read_announce_timeout_on_partial_line(self):
        read_fd, write_fd = os.pipe()
        try:
            os.write(write_fd, b'{"pid": 1')  # never completes the line
            with pytest.raises(TimeoutError):
                _read_announce(read_fd, timeout=0.05)
        finally:
            os.close(read_fd)
            os.close(write_fd)

    def test_read_announce_eof_is_none_even_with_timeout(self):
        read_fd, write_fd = os.pipe()
        os.close(write_fd)  # the worker died before announcing
        try:
            assert _read_announce(read_fd, timeout=1.0) is None
        finally:
            os.close(read_fd)

    def test_read_announce_data_beats_timeout(self):
        read_fd, write_fd = os.pipe()
        try:
            write_worker_announce(write_fd, 8123, 9001)
            announce = _read_announce(read_fd, timeout=5.0)
        finally:
            os.close(read_fd)
        assert announce["port"] == 8123


class TestModelNameValidation:
    @pytest.mark.parametrize("name", ["a", "A-1_b.c", "x" * 64])
    def test_valid(self, name):
        assert validate_model_name(name) == name

    @pytest.mark.parametrize("name", ["", "a b", "a/b", "x" * 65, "é"])
    def test_invalid(self, name):
        with pytest.raises(FleetError) as exc:
            validate_model_name(name)
        assert exc.value.status == 400
