"""Unit tests for repro.core.scaling (scaling-pattern detector)."""

import numpy as np
import pytest

from repro.core.scaling import FittedLaw, ScalingPatternDetector


class TestDetector:
    def test_paper_table1_example(self):
        # Capacity of the IFU meta table over C1 and C15: width * depth *
        # count = 120*8*1 = 960 and 240*40*1 = 9600.  (The paper's prose
        # prints 1920/19200 but its own k = 240 matches 960/9600.)
        detector = ScalingPatternDetector()
        law = detector.fit(
            targets=[960.0, 9600.0],
            param_values={
                "FetchWidth": [4.0, 8.0],
                "DecodeWidth": [1.0, 5.0],
                "FetchBufferEntry": [5.0, 40.0],
            },
            param_order=("FetchWidth", "DecodeWidth", "FetchBufferEntry"),
        )
        assert set(law.params) == {"FetchWidth", "DecodeWidth"}
        assert law.coefficient == pytest.approx(240.0)
        assert detector.is_exact(law)

    def test_constant_target_picks_empty_combo(self):
        detector = ScalingPatternDetector()
        law = detector.fit(
            targets=[48.0, 48.0, 48.0],
            param_values={"A": [1.0, 2.0, 3.0]},
            param_order=("A",),
        )
        assert law.params == ()
        assert law.coefficient == pytest.approx(48.0)

    def test_single_parameter(self):
        detector = ScalingPatternDetector()
        law = detector.fit(
            targets=[32.0, 96.0],
            param_values={"A": [2.0, 6.0], "B": [1.0, 2.0]},
            param_order=("A", "B"),
        )
        assert law.params == ("A",)
        assert law.coefficient == pytest.approx(16.0)

    def test_triple_product(self):
        detector = ScalingPatternDetector(max_combination_size=3)
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([2.0, 2.0, 5.0])
        c = np.array([1.0, 3.0, 2.0])
        law = detector.fit(
            targets=7.0 * a * b * c,
            param_values={"A": list(a), "B": list(b), "C": list(c)},
            param_order=("A", "B", "C"),
        )
        assert set(law.params) == {"A", "B", "C"}
        assert law.coefficient == pytest.approx(7.0)

    def test_tie_broken_by_smaller_combination(self):
        # B == A so k*A and k*A*B' ... give identical fits; pick size 1.
        detector = ScalingPatternDetector()
        law = detector.fit(
            targets=[10.0, 20.0],
            param_values={"A": [1.0, 2.0], "B": [1.0, 1.0]},
            param_order=("A", "B"),
        )
        assert law.params == ("A",)

    def test_noisy_target_minimizes_error(self):
        detector = ScalingPatternDetector()
        law = detector.fit(
            targets=[10.1, 19.8, 30.3],
            param_values={"A": [1.0, 2.0, 3.0], "B": [3.0, 1.0, 2.0]},
            param_order=("A", "B"),
        )
        assert law.params == ("A",)
        assert not detector.is_exact(law)
        assert law.error < 0.02

    def test_evaluate(self):
        law = FittedLaw(coefficient=30.0, params=("FetchWidth",), error=0.0)
        assert law.evaluate({"FetchWidth": 8.0}) == pytest.approx(240.0)

    def test_describe(self):
        law = FittedLaw(240.0, ("FetchWidth", "DecodeWidth"), 0.0)
        assert law.describe() == "240 * FetchWidth * DecodeWidth"
        assert FittedLaw(48.0, (), 0.0).describe() == "48"

    def test_rejects_nonpositive_targets(self):
        with pytest.raises(ValueError, match="positive"):
            ScalingPatternDetector().fit([0.0, 1.0], {"A": [1.0, 2.0]}, ("A",))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ScalingPatternDetector().fit([1.0, 2.0], {"A": [1.0]}, ("A",))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ScalingPatternDetector().fit([], {}, ())

    def test_max_combination_size_zero_gives_constant(self):
        detector = ScalingPatternDetector(max_combination_size=0)
        law = detector.fit([5.0, 7.0], {"A": [1.0, 2.0]}, ("A",))
        assert law.params == ()
        assert law.coefficient == pytest.approx(6.2, rel=0.05)
