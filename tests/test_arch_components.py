"""Unit tests for repro.arch.components (Table III)."""

import pytest

from repro.arch.components import (
    COMPONENTS,
    Component,
    component_by_name,
    sram_components,
)
from repro.arch.params import HARDWARE_PARAMETERS


class TestTableIII:
    def test_twenty_two_components(self):
        assert len(COMPONENTS) == 22

    def test_unique_names(self):
        names = [c.name for c in COMPONENTS]
        assert len(names) == len(set(names))

    def test_paper_parameter_assignments(self):
        assert component_by_name("BPTAGE").hardware_parameters == (
            "FetchWidth",
            "BranchCount",
        )
        assert component_by_name("ROB").hardware_parameters == (
            "DecodeWidth",
            "RobEntry",
        )
        assert component_by_name("Regfile").hardware_parameters == (
            "DecodeWidth",
            "IntPhyRegister",
            "FpPhyRegister",
        )
        assert component_by_name("IFU").hardware_parameters == (
            "FetchWidth",
            "DecodeWidth",
            "FetchBufferEntry",
        )
        assert component_by_name("FU Pool").hardware_parameters == (
            "MemIssueWidth",
            "FpIssueWidth",
            "IntIssueWidth",
        )

    def test_other_logic_uses_all_parameters(self):
        assert set(component_by_name("Other Logic").hardware_parameters) == set(
            HARDWARE_PARAMETERS
        )

    def test_all_parameters_are_known(self):
        for comp in COMPONENTS:
            for p in comp.hardware_parameters:
                assert p in HARDWARE_PARAMETERS

    def test_sram_components_subset(self):
        sram = sram_components()
        assert {c.name for c in sram} == {
            "BPTAGE",
            "BPBTB",
            "ICacheTagArray",
            "ICacheDataArray",
            "ROB",
            "DCacheTagArray",
            "DCacheDataArray",
            "I-TLB",
            "D-TLB",
            "LSU",
            "IFU",
        }

    def test_domains_valid(self):
        for comp in COMPONENTS:
            assert comp.domain in ("frontend", "backend", "memory")

    def test_unknown_component_lookup(self):
        with pytest.raises(KeyError, match="Nope"):
            component_by_name("Nope")

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError, match="domain"):
            Component("X", ("FetchWidth",), False, "sideways")

    def test_invalid_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Component("X", ("NoSuchParam",), False, "backend")
