"""Unit tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.arch.config import config_by_name
from repro.arch.workloads import WORKLOADS
from repro.data.dataset import build_dataset


@pytest.fixture(scope="module")
def small_dataset(flow):
    configs = (config_by_name("C1"), config_by_name("C8"), config_by_name("C15"))
    return build_dataset(flow, configs=configs)


class TestBuildDataset:
    def test_sample_count(self, small_dataset):
        assert len(small_dataset) == 3 * len(WORKLOADS)

    def test_feature_matrix_shape(self, small_dataset):
        X = small_dataset.features()
        assert X.shape == (len(small_dataset), len(small_dataset.feature_names))
        assert np.isfinite(X).all()

    def test_totals_positive(self, small_dataset):
        assert (small_dataset.totals() > 0).all()

    def test_group_labels(self, small_dataset):
        clock = small_dataset.group("clock")
        sram = small_dataset.group("sram")
        totals = small_dataset.totals()
        assert ((clock + sram) < totals).all()

    def test_split_by_config(self, small_dataset):
        train, test = small_dataset.split_by_config(("C1", "C15"))
        assert len(train) == 2 * len(WORKLOADS)
        assert len(test) == 1 * len(WORKLOADS)
        assert {s.config_name for s in test.samples} == {"C8"}

    def test_bad_split_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.split_by_config(("C1", "C8", "C15"))

    def test_sample_fields(self, small_dataset):
        s = small_dataset.samples[0]
        assert s.config_name == "C1"
        assert s.hardware.size == 18
        assert s.total_power > 0
