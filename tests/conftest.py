"""Shared fixtures.

The expensive artifacts — the flow (which caches all runs) and a fully
trained AutoPower model on the paper's 2-config split — are session-scoped
so the whole suite pays for them once.
"""

from __future__ import annotations

import pytest

from repro.arch.config import BOOM_CONFIGS, config_by_name
from repro.arch.workloads import WORKLOADS
from repro.core.autopower import AutoPower
from repro.vlsi.flow import VlsiFlow


@pytest.fixture(scope="session", autouse=True)
def _hermetic_flow_cache(tmp_path_factory):
    """Point the flow disk cache at a per-session temp dir.

    Keeps the suite hermetic: tests never read stale entries from (or
    pollute) the user's ``~/.cache/repro/flow-cache``.
    """
    root = tmp_path_factory.mktemp("flow-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_FLOW_CACHE_DIR", str(root))
    yield str(root)
    mp.undo()


@pytest.fixture(scope="session")
def flow(_hermetic_flow_cache) -> VlsiFlow:
    return VlsiFlow()


@pytest.fixture(scope="session")
def train_configs():
    return [config_by_name("C1"), config_by_name("C15")]


@pytest.fixture(scope="session")
def test_configs():
    return [c for c in BOOM_CONFIGS if c.name not in ("C1", "C15")]


@pytest.fixture(scope="session")
def workloads():
    return list(WORKLOADS)


@pytest.fixture(scope="session")
def autopower2(flow, train_configs, workloads) -> AutoPower:
    """AutoPower trained on the paper's 2-config few-shot split."""
    return AutoPower(library=flow.library).fit(flow, train_configs, workloads)


@pytest.fixture(scope="session")
def c1():
    return config_by_name("C1")


@pytest.fixture(scope="session")
def c8():
    return config_by_name("C8")


@pytest.fixture(scope="session")
def c15():
    return config_by_name("C15")


@pytest.fixture(scope="session")
def dhrystone():
    from repro.arch.workloads import workload_by_name

    return workload_by_name("dhrystone")
