"""Unit tests for the executor subsystem (repro.parallel)."""

from __future__ import annotations

import time

import pytest

import repro.parallel.executor as executor_mod
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_default_jobs,
    get_executor,
    parse_jobs_spec,
    resolve_jobs,
    set_default_jobs,
)


def _square(x):
    return x * x


def _slow_identity(pair):
    # Later submissions finish first; order must still be submission order.
    index, delay = pair
    time.sleep(delay)
    return index


@pytest.fixture(autouse=True)
def _clean_jobs_state(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    set_default_jobs(None)
    yield
    set_default_jobs(None)


class TestParseJobsSpec:
    def test_bare_count(self):
        assert parse_jobs_spec("4") == (4, None)

    def test_backend_and_count(self):
        assert parse_jobs_spec("thread:4") == (4, "thread")
        assert parse_jobs_spec(" process:2 ") == (2, "process")

    def test_bare_backend(self):
        assert parse_jobs_spec("serial") == (1, "serial")
        # A bare parallel backend means "all cores" on that backend.
        assert parse_jobs_spec("process") == (0, "process")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            parse_jobs_spec("fiber:4")

    def test_rejects_garbage_count(self):
        with pytest.raises(ValueError, match="invalid worker count"):
            parse_jobs_spec("thread:lots")


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs(None) == (1, None)

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == (3, None)

    def test_env_backend_survives_explicit_count(self, monkeypatch):
        # REPRO_JOBS=thread:8 keeps forcing the thread backend even when
        # the worker *count* comes from an explicit argument or --jobs.
        monkeypatch.setenv("REPRO_JOBS", "thread:8")
        assert resolve_jobs(3) == (3, "thread")
        set_default_jobs(2)
        assert resolve_jobs(None) == (2, "thread")

    def test_session_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        set_default_jobs(2)
        assert resolve_jobs(None) == (2, None)
        assert get_default_jobs() == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "thread:5")
        assert resolve_jobs(None) == (5, "thread")

    def test_nonpositive_means_all_cores(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "cpu_count", lambda: 7)
        assert resolve_jobs(0) == (7, None)
        assert resolve_jobs(-1) == (7, None)


class TestGetExecutor:
    def test_one_worker_is_serial(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(1, "thread"), SerialExecutor)
        assert isinstance(get_executor(1, "process"), SerialExecutor)

    def test_auto_falls_back_to_serial_on_one_core(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "cpu_count", lambda: 1)
        assert isinstance(get_executor(4), SerialExecutor)
        assert isinstance(get_executor(4, "auto"), SerialExecutor)

    def test_auto_picks_process_on_multicore(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "cpu_count", lambda: 4)
        ex = get_executor(4)
        assert isinstance(ex, ProcessExecutor)
        assert ex.n_jobs == 4

    def test_explicit_backends_honoured_even_on_one_core(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "cpu_count", lambda: 1)
        assert isinstance(get_executor(2, "thread"), ThreadExecutor)
        assert isinstance(get_executor(2, "process"), ProcessExecutor)

    def test_serial_backend_forced(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "serial")
        assert isinstance(get_executor(), SerialExecutor)

    def test_env_backend_hint_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "thread:3")
        ex = get_executor()
        assert isinstance(ex, ThreadExecutor)
        assert ex.n_jobs == 3

    def test_env_backend_forces_backend_for_explicit_count(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "cpu_count", lambda: 4)
        monkeypatch.setenv("REPRO_JOBS", "thread:8")
        ex = get_executor(2)
        assert isinstance(ex, ThreadExecutor)
        assert ex.n_jobs == 2
        # An explicit backend argument still outranks the env hint.
        assert isinstance(get_executor(2, "process"), ProcessExecutor)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            get_executor(2, "fiber")


class TestExecutorMap:
    def test_serial_map(self):
        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_thread_map_preserves_submission_order(self):
        ex = ThreadExecutor(4)
        pairs = [(0, 0.05), (1, 0.0), (2, 0.02), (3, 0.0)]
        assert ex.map(_slow_identity, pairs) == [0, 1, 2, 3]

    def test_process_map_preserves_submission_order(self):
        ex = ProcessExecutor(2)
        assert ex.map(_square, list(range(6))) == [0, 1, 4, 9, 16, 25]
        assert ex.fallback_reason is None

    def test_process_unpicklable_task_falls_back_to_serial(self):
        ex = ProcessExecutor(2)
        assert ex.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert ex.fallback_reason is not None
        assert "not picklable" in ex.fallback_reason

    def test_process_unpicklable_payload_falls_back_to_serial(self):
        ex = ProcessExecutor(2)
        items = [(1, lambda: None), (2, lambda: None)]
        assert ex.map(_first_of, items) == [1, 2]
        assert ex.fallback_reason is not None

    def test_single_item_runs_inline(self):
        ex = ProcessExecutor(2)
        assert ex.map(_square, [3]) == [9]

    def test_pool_is_reused_across_maps_and_released_on_close(self):
        # Chunked fan-outs (run_many batches, DSE jobs) call map many
        # times; the pool must persist between calls, not re-fork.
        with ThreadExecutor(2) as ex:
            assert ex.map(_square, [1, 2]) == [1, 4]
            pool = ex._pool
            assert pool is not None
            assert ex.map(_square, [3, 4]) == [9, 16]
            assert ex._pool is pool
        assert ex._pool is None
        # A closed executor transparently builds a fresh pool.
        assert ex.map(_square, [5, 6]) == [25, 36]
        ex.close()

    def test_process_pool_is_reused_across_maps(self):
        with ProcessExecutor(2) as ex:
            assert ex.map(_square, [1, 2]) == [1, 4]
            pool = ex._pool
            assert ex.map(_square, [3, 4]) == [9, 16]
            assert ex._pool is pool
        assert ex._pool is None

    def test_serial_close_is_a_no_op(self):
        ex = SerialExecutor()
        ex.close()
        assert ex.map(_square, [2]) == [4]


def _first_of(pair):
    return pair[0]
