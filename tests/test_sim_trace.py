"""Unit tests for repro.sim.trace (windowed traces)."""

import numpy as np
import pytest

from repro.arch.config import config_by_name
from repro.arch.workloads import LARGE_WORKLOADS, workload_by_name
from repro.sim.trace import WindowTraceGenerator


class TestWindowTraceGenerator:
    def test_rejects_small_workloads(self):
        gen = WindowTraceGenerator()
        with pytest.raises(ValueError, match="phase structure"):
            gen.generate(config_by_name("C2"), workload_by_name("dhrystone"))

    def test_millions_of_cycles_many_windows(self):
        gen = WindowTraceGenerator(window_cycles=50)
        trace = gen.generate(config_by_name("C2"), workload_by_name("gemm"))
        assert trace.total_cycles > 1_000_000
        assert trace.n_windows == int(np.ceil(trace.total_cycles / 50))
        assert trace.n_windows > 20_000

    def test_scales_normalized_to_mean_one(self):
        gen = WindowTraceGenerator()
        trace = gen.generate(config_by_name("C3"), workload_by_name("spmm"))
        assert trace.scales.mean() == pytest.approx(1.0)

    def test_scales_positive_and_bounded(self):
        gen = WindowTraceGenerator()
        for workload in LARGE_WORKLOADS:
            trace = gen.generate(config_by_name("C4"), workload)
            assert trace.scales.min() > 0.1
            assert trace.scales.max() < 3.0

    def test_deterministic(self):
        gen = WindowTraceGenerator()
        c2, gemm = config_by_name("C2"), workload_by_name("gemm")
        a = gen.generate(c2, gemm, max_windows=500)
        b = gen.generate(c2, gemm, max_windows=500)
        assert np.array_equal(a.scales, b.scales)

    def test_different_configs_different_traces(self):
        gen = WindowTraceGenerator()
        gemm = workload_by_name("gemm")
        a = gen.generate(config_by_name("C2"), gemm, max_windows=500)
        b = gen.generate(config_by_name("C3"), gemm, max_windows=500)
        assert not np.array_equal(a.scales, b.scales)

    def test_max_windows_subsampling(self):
        gen = WindowTraceGenerator()
        trace = gen.generate(
            config_by_name("C2"), workload_by_name("gemm"), max_windows=200
        )
        assert trace.n_windows == 200

    def test_phases_visible_in_trace(self):
        # GEMM's compute phase is hotter than its ramp phase.
        gen = WindowTraceGenerator()
        trace = gen.generate(config_by_name("C2"), workload_by_name("gemm"))
        n = trace.n_windows
        ramp = trace.scales[: int(0.06 * n)].mean()
        compute = trace.scales[int(0.2 * n) : int(0.8 * n)].mean()
        assert compute > ramp * 1.2

    def test_invalid_window_cycles(self):
        with pytest.raises(ValueError):
            WindowTraceGenerator(window_cycles=0)
