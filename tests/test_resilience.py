"""Fault-injection tests for the serving resilience layer.

Every failure mode here is *scripted*, not timed: faults fire at the
service boundary keyed by request arrival index
(:mod:`repro.serving.faults`), hangs hold a worker thread on an event
the test releases, and deadline/breaker state transitions run on a
:class:`ManualClock` the test advances — so nothing below asserts on
wall-clock ordering.

The contracts under test (the PR's acceptance criteria):

* overload at full queue depth sheds with 429 + ``Retry-After`` while
  every accepted request stays bitwise-equal to direct
  ``PredictionService`` calls,
* a request whose deadline expires while queued answers 504 and *never
  reaches the model*,
* a hung model call times out (504), recycles the worker, trips the
  circuit breaker, and a later half-open probe recovers it,
* graceful drain completes in-flight requests to their real values and
  refuses new ones with 503.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import socket
import threading
import time

import pytest

import repro.api as api
from repro.serving import (
    GatewayThread,
    MicroBatcher,
    OverloadError,
    ResilienceConfig,
    ServingClient,
    ServingError,
    WireError,
    wire,
)
from repro.serving.faults import FaultInjector, FaultyService, ManualClock
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    DrainingError,
    ServiceTimeEstimator,
)


@pytest.fixture(scope="module")
def mcpat_model(flow):
    """Cheap analytical model — resilience behavior is model-agnostic."""
    return api.fit("mcpat", flow=flow)


@pytest.fixture(scope="module")
def service(mcpat_model):
    return api.PredictionService(mcpat_model)


@pytest.fixture(scope="module")
def requests8(flow, test_configs, workloads):
    """Eight total-power requests over distinct (config, workload) pairs."""
    return [
        api.PredictRequest(config=c, events=flow.run(c, w).events, workload=w)
        for c in test_configs[:4]
        for w in workloads[:2]
    ]


@pytest.fixture(scope="module")
def direct_totals(service, requests8):
    """Ground truth: what a direct service call answers, per request."""
    return [service.predict(r).total for r in requests8]


async def _hang_started(injector, timeout=10.0):
    """Await (off-loop) the rendezvous that a scripted hang is holding."""
    loop = asyncio.get_running_loop()
    started = await loop.run_in_executor(
        None, injector.wait_hang_started, timeout
    )
    assert started, "scripted hang never took effect"


async def _spin_until(predicate, rounds=100):
    """Cycle the event loop until ``predicate()`` holds (no sleeping)."""
    for _ in range(rounds):
        if predicate():
            return
        await asyncio.sleep(0)
    raise AssertionError("event-loop condition never became true")


# ---------------------------------------------------------------------------
class TestFaultHarness:
    def test_manual_clock_is_monotonic(self):
        clock = ManualClock(5.0)
        assert clock() == 5.0
        clock.advance(2.5)
        assert clock() == 7.5
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_unfaulted_calls_pass_through_and_are_logged(
        self, service, requests8, direct_totals
    ):
        injector = FaultInjector()
        faulty = FaultyService(service, injector)
        responses = faulty.submit_many(requests8[:3])
        assert [r.total for r in responses] == direct_totals[:3]
        assert injector.calls == [(0, 3)]
        assert injector.served == requests8[:3]

    def test_scripted_exception_fires_at_its_request_index(
        self, service, requests8
    ):
        injector = FaultInjector().fail_at(1)
        faulty = FaultyService(service, injector)
        faulty.submit_many([requests8[0]])  # index 0: clean
        with pytest.raises(RuntimeError, match="injected fault at request 1"):
            faulty.submit_many([requests8[1]])
        # The faulted call never reached the model.
        assert injector.served == [requests8[0]]


# ---------------------------------------------------------------------------
class TestAdmissionControl:
    def test_overload_sheds_429_and_accepted_stay_bitwise(
        self, service, requests8, direct_totals
    ):
        """Acceptance: full queue -> 429 + Retry-After; accepted requests
        complete bitwise-equal to direct service calls."""
        injector = FaultInjector().hang_at(0)
        shed = []

        async def run():
            batcher = MicroBatcher(
                FaultyService(service, injector),
                max_wait_ms=0.0,
                resilience=ResilienceConfig(queue_depth=2),
            )
            await batcher.start()
            # Request 0 is pulled by the collector and wedges the model
            # call; requests 1-2 fill the bounded queue exactly.
            first = asyncio.ensure_future(batcher.submit(requests8[0]))
            await _hang_started(injector)
            queued = [
                asyncio.ensure_future(batcher.submit(r))
                for r in requests8[1:3]
            ]
            await _spin_until(lambda: batcher.queue_depth == 2)
            for request in requests8[3:5]:
                with pytest.raises(OverloadError) as excinfo:
                    await batcher.submit(request)
                shed.append(excinfo.value)
            injector.release_hangs()
            results = await asyncio.gather(first, *queued)
            await batcher.stop()
            return results, batcher

        results, batcher = asyncio.run(run())
        assert [r.total for r in results] == direct_totals[:3]
        assert batcher.shed_overload == 2
        for exc in shed:
            assert exc.status == 429
            assert exc.retry_after >= 1
        # The shed requests never reached the model.
        assert injector.served == requests8[:3]

    def test_retry_after_scales_with_observed_service_time(self):
        estimator = ServiceTimeEstimator()
        assert estimator.retry_after(10) >= 1
        estimator.observe(4.0, n_requests=2)  # 2s per request
        assert estimator.retry_after(5) == 10
        # EWMA folds new samples in rather than jumping.
        estimator.observe(0.0, n_requests=1)
        assert 0 < estimator.mean_s < 2.0


# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_expired_request_is_shed_at_dequeue_and_never_reaches_model(
        self, service, requests8, direct_totals
    ):
        """Acceptance: a deadline that expires while queued answers 504
        without the model ever seeing the request."""
        clock = ManualClock()
        injector = FaultInjector().hang_at(0)

        async def run():
            batcher = MicroBatcher(
                FaultyService(service, injector),
                max_wait_ms=0.0,
                clock=clock,
            )
            await batcher.start()
            first = asyncio.ensure_future(batcher.submit(requests8[0]))
            await _hang_started(injector)
            doomed = asyncio.ensure_future(
                batcher.submit(requests8[1], deadline_ms=100.0)
            )
            await _spin_until(lambda: batcher.queue_depth == 1)
            clock.advance(1.0)  # the queued deadline is now long past
            injector.release_hangs()
            with pytest.raises(DeadlineExceededError) as excinfo:
                await doomed
            result = await first
            await batcher.stop()
            return result, excinfo.value, batcher

        result, exc, batcher = asyncio.run(run())
        assert exc.status == 504
        assert "before the model" in exc.message
        assert result.total == direct_totals[0]
        assert batcher.shed_deadline == 1
        assert injector.served == [requests8[0]]

    def test_hung_model_call_times_out_504_and_recycles_worker(
        self, service, requests8, direct_totals
    ):
        injector = FaultInjector().hang_at(0)

        async def run():
            batcher = MicroBatcher(
                FaultyService(service, injector), max_wait_ms=0.0
            )
            await batcher.start()
            with pytest.raises(DeadlineExceededError) as excinfo:
                await batcher.submit(requests8[0], deadline_ms=50.0)
            # The stuck worker was abandoned; a fresh one serves the
            # next request normally.
            follow_up = await batcher.submit(requests8[1])
            injector.release_hangs()
            await batcher.stop()
            return excinfo.value, follow_up, batcher

        exc, follow_up, batcher = asyncio.run(run())
        assert exc.status == 504
        assert batcher.model_timeouts == 1
        assert batcher.worker_recycles == 1
        assert follow_up.total == direct_totals[1]

    def test_deadline_ms_round_trips_the_wire(self, requests8):
        request = api.PredictRequest(
            requests8[0].config,
            requests8[0].events,
            requests8[0].workload,
            deadline_ms=250.0,
        )
        encoded = wire.encode_request(request)
        assert encoded["deadline_ms"] == 250.0
        assert wire.decode_request(encoded).deadline_ms == 250.0
        # Requests without a deadline don't grow the field.
        bare = wire.encode_request(requests8[0])
        assert "deadline_ms" not in bare

    @pytest.mark.parametrize("bad", ["soon", True, -5, 0, float("nan")])
    def test_bad_deadline_ms_is_400(self, requests8, bad):
        obj = wire.encode_request(requests8[0])
        obj["deadline_ms"] = bad
        with pytest.raises(WireError) as excinfo:
            wire.decode_request(obj)
        assert excinfo.value.status == 400

    def test_predict_request_validates_deadline(self, requests8):
        with pytest.raises(ValueError, match="deadline_ms"):
            api.PredictRequest(
                requests8[0].config, requests8[0].events, deadline_ms=-1.0
            )


# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_state_machine_transitions_on_manual_clock(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_s=10.0, clock=clock
        )
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        breaker.admit()  # still closed below the threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.admit()
        assert excinfo.value.retry_after == 10
        clock.advance(10.0)
        breaker.admit()  # cooldown elapsed: the probe goes through
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()  # failed probe re-opens immediately
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(10.0)
        breaker.admit()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 0
        assert breaker.opened_count == 2

    def test_consecutive_failures_open_circuit_and_probe_recovers(
        self, service, requests8, direct_totals
    ):
        clock = ManualClock()
        injector = FaultInjector().fail_at(0, 1, 2)

        async def run():
            batcher = MicroBatcher(
                FaultyService(service, injector),
                max_wait_ms=0.0,
                resilience=ResilienceConfig(
                    breaker_failure_threshold=3, breaker_cooldown_s=30.0
                ),
                clock=clock,
            )
            await batcher.start()
            for i in range(3):
                with pytest.raises(RuntimeError, match="injected fault"):
                    await batcher.submit(requests8[i])
            assert batcher.breaker.state == CircuitBreaker.OPEN
            calls_before = len(injector.calls)
            # Open circuit: fast-fail at admission, service never called.
            with pytest.raises(CircuitOpenError) as excinfo:
                await batcher.submit(requests8[3])
            assert len(injector.calls) == calls_before
            clock.advance(31.0)
            probe = await batcher.submit(requests8[3])  # index 3: clean
            await batcher.stop()
            return excinfo.value, probe, batcher

        exc, probe, batcher = asyncio.run(run())
        assert exc.status == 503
        assert exc.retry_after == 30
        assert batcher.shed_circuit == 1
        assert probe.total == direct_totals[3]
        assert batcher.breaker.state == CircuitBreaker.CLOSED

    def test_hung_call_trips_breaker_and_half_open_probe_recovers(
        self, service, requests8, direct_totals
    ):
        """Acceptance: a hung model call trips the circuit breaker and a
        later half-open probe recovers it."""
        clock = ManualClock()
        injector = FaultInjector().hang_at(0)

        async def run():
            batcher = MicroBatcher(
                FaultyService(service, injector),
                max_wait_ms=0.0,
                resilience=ResilienceConfig(
                    breaker_failure_threshold=1, breaker_cooldown_s=5.0
                ),
                clock=clock,
            )
            await batcher.start()
            with pytest.raises(DeadlineExceededError):
                await batcher.submit(requests8[0], deadline_ms=20.0)
            assert batcher.breaker.state == CircuitBreaker.OPEN
            with pytest.raises(CircuitOpenError):
                await batcher.submit(requests8[1])
            clock.advance(6.0)
            recovered = await batcher.submit(requests8[1])
            injector.release_hangs()
            await batcher.stop()
            return recovered, batcher

        recovered, batcher = asyncio.run(run())
        assert recovered.total == direct_totals[1]
        assert batcher.breaker.state == CircuitBreaker.CLOSED
        assert batcher.breaker.snapshot()["opened_count"] == 1


# ---------------------------------------------------------------------------
class TestGracefulDrain:
    def test_drain_completes_in_flight_bitwise_and_refuses_new(
        self, service, requests8, direct_totals
    ):
        """Acceptance: drain completes accepted requests to their real
        values; new submissions answer 503."""
        injector = FaultInjector().hang_at(0)

        async def run():
            batcher = MicroBatcher(
                FaultyService(service, injector), max_wait_ms=0.0
            )
            await batcher.start()
            first = asyncio.ensure_future(batcher.submit(requests8[0]))
            await _hang_started(injector)
            queued = [
                asyncio.ensure_future(batcher.submit(r))
                for r in requests8[1:4]
            ]
            await _spin_until(lambda: batcher.queue_depth == 3)
            stop_task = asyncio.ensure_future(
                batcher.stop(drain=True, drain_timeout=30.0)
            )
            await _spin_until(lambda: batcher.draining)
            with pytest.raises(DrainingError) as excinfo:
                await batcher.submit(requests8[4])
            injector.release_hangs()
            await stop_task
            results = await asyncio.gather(first, *queued)
            return results, excinfo.value, batcher

        results, exc, batcher = asyncio.run(run())
        assert exc.status == 503
        assert [r.total for r in results] == direct_totals[:4]
        assert batcher.shed_draining == 1
        assert batcher.drained_requests >= 3

    def test_drain_timeout_falls_back_to_hard_stop(self, service, requests8):
        injector = FaultInjector().hang_at(0)

        async def run():
            batcher = MicroBatcher(
                FaultyService(service, injector), max_wait_ms=0.0
            )
            await batcher.start()
            stuck = asyncio.ensure_future(batcher.submit(requests8[0]))
            await _hang_started(injector)
            # The hang holds the only worker; an unreleased drain cannot
            # complete, so the bounded stop must fail the future rather
            # than hang the caller.
            await batcher.stop(drain=True, drain_timeout=0.05)
            outcome = await asyncio.gather(stuck, return_exceptions=True)
            injector.release_hangs()
            return outcome[0]

        outcome = asyncio.run(run())
        assert isinstance(outcome, RuntimeError)
        assert "stopped" in str(outcome)


# ---------------------------------------------------------------------------
def _http(port, method, path, payload=None, timeout=30):
    """One HTTP round trip: (status, decoded body, lowercase headers)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    decoded = json.loads(response.read().decode("utf-8"))
    headers = {k.lower(): v for k, v in response.getheaders()}
    conn.close()
    return response.status, decoded, headers


def _raw_exchange(port, raw, timeout=10.0):
    """Send raw bytes, read until the server closes; returns the bytes."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(raw)
        sock.settimeout(timeout)
        data = b""
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        except socket.timeout:
            pass
    return data


class TestGatewayResilience:
    def test_overload_answers_429_with_retry_after_header(
        self, service, requests8, direct_totals
    ):
        injector = FaultInjector().hang_at(0)
        outcomes = {}

        def post(port, index):
            outcomes[index] = _http(
                port, "POST", "/predict", wire.encode_request(requests8[index])
            )

        with GatewayThread(
            FaultyService(service, injector),
            max_wait_ms=0.0,
            resilience=ResilienceConfig(queue_depth=1),
        ) as handle:
            wedger = threading.Thread(target=post, args=(handle.port, 0))
            wedger.start()
            assert injector.wait_hang_started(10)
            filler = threading.Thread(target=post, args=(handle.port, 1))
            filler.start()
            for _ in range(500):  # until the filler occupies the queue
                _status, stats, _ = _http(handle.port, "GET", "/stats")
                if stats["resilience"]["queue_depth"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("queued request never became visible")
            status, body, headers = _http(
                handle.port, "POST", "/predict",
                wire.encode_request(requests8[2]),
            )
            assert status == 429
            assert body["error"]["status"] == 429
            assert int(headers["retry-after"]) >= 1
            injector.release_hangs()
            wedger.join(30)
            filler.join(30)
        assert outcomes[0][0] == 200 and outcomes[1][0] == 200
        assert outcomes[0][1]["total"] == direct_totals[0]
        assert outcomes[1][1]["total"] == direct_totals[1]

    def test_wire_deadline_on_hung_model_answers_504(
        self, service, requests8
    ):
        injector = FaultInjector().hang_at(0)
        with GatewayThread(
            FaultyService(service, injector), max_wait_ms=0.0
        ) as handle:
            obj = wire.encode_request(requests8[0])
            obj["deadline_ms"] = 50
            status, body, _ = _http(handle.port, "POST", "/predict", obj)
            assert status == 504
            assert body["error"]["status"] == 504
            injector.release_hangs()

    def test_too_many_headers_is_431(self, service):
        with GatewayThread(service, max_wait_ms=0.0) as handle:
            filler = "".join(
                f"X-Filler-{i}: v\r\n" for i in range(150)
            ).encode()
            raw = b"GET /healthz HTTP/1.1\r\n" + filler + b"\r\n"
            data = _raw_exchange(handle.port, raw)
            assert data.startswith(b"HTTP/1.1 431 ")
            assert b"headers" in data

    def test_oversized_header_block_is_431(self, service):
        with GatewayThread(service, max_wait_ms=0.0) as handle:
            filler = "".join(
                f"X-Big-{i}: {'v' * 1024}\r\n" for i in range(40)
            ).encode()
            raw = b"GET /healthz HTTP/1.1\r\n" + filler + b"\r\n"
            data = _raw_exchange(handle.port, raw)
            assert data.startswith(b"HTTP/1.1 431 ")

    def test_stalled_client_mid_request_is_408(self, service):
        with GatewayThread(
            service,
            max_wait_ms=0.0,
            resilience=ResilienceConfig(read_timeout_s=0.3),
        ) as handle:
            # Declares a body it never sends: the body read must time
            # out instead of holding the handler (and any drain) hostage.
            raw = (
                b"POST /predict HTTP/1.1\r\n"
                b"Content-Length: 100\r\n\r\n"
                b"{\"par"
            )
            data = _raw_exchange(handle.port, raw)
            assert data.startswith(b"HTTP/1.1 408 ")

    def test_stats_exposes_resilience_and_circuit_state(self, service):
        with GatewayThread(service, max_wait_ms=0.0) as handle:
            _status, stats, _ = _http(handle.port, "GET", "/stats")
        resilience = stats["resilience"]
        assert resilience["draining"] is False
        assert resilience["queue_capacity"] == 1024
        assert resilience["shed"] == {
            "overload": 0, "deadline": 0, "draining": 0, "circuit": 0,
        }
        assert resilience["circuit"]["state"] == "closed"
        assert resilience["circuit"]["failure_threshold"] == 5

    def test_predict_requests_counted_at_admission(
        self, service, requests8
    ):
        # Satellite: a failing request must still count in
        # predict_requests, so /stats error ratios mean something.
        injector = FaultInjector().fail_at(0)
        with GatewayThread(
            FaultyService(service, injector), max_wait_ms=0.0
        ) as handle:
            status, _body, _ = _http(
                handle.port, "POST", "/predict",
                wire.encode_request(requests8[0]),
            )
            assert status == 500
            _status, stats, _ = _http(handle.port, "GET", "/stats")
        gateway = stats["gateway"]
        assert gateway["predict_requests"] == 1
        assert gateway["predict_responses"] == 0
        assert gateway["errors"].get("500") == 1
        assert gateway["latency_ms"]["window"] == 1

    def test_gateway_drain_completes_in_flight_and_refuses_new(
        self, service, requests8, direct_totals
    ):
        injector = FaultInjector().hang_at(0)
        outcomes = {}

        def post(port, index):
            outcomes[index] = _http(
                port, "POST", "/predict", wire.encode_request(requests8[index])
            )

        handle = GatewayThread(
            FaultyService(service, injector), max_wait_ms=0.0
        ).start()
        port = handle.port
        try:
            wedger = threading.Thread(target=post, args=(port, 0))
            wedger.start()
            assert injector.wait_hang_started(10)
            stopper = threading.Thread(
                target=handle.stop, kwargs={"drain_timeout": 30.0}
            )
            stopper.start()
            for _ in range(500):
                if handle.gateway.draining:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("gateway never began draining")
            # The listener is closed: new connections are refused (or,
            # if raced into an accepted socket, answered 503).
            try:
                status, _body, _ = _http(port, "POST", "/predict",
                                         wire.encode_request(requests8[1]),
                                         timeout=5)
            except OSError:
                pass
            else:
                assert status == 503
            injector.release_hangs()
            stopper.join(60)
            wedger.join(30)
            assert not stopper.is_alive()
        finally:
            injector.release_hangs()
            if handle._thread is not None:
                handle.stop(drain=False)
        # The in-flight request completed bitwise during the drain.
        assert outcomes[0][0] == 200
        assert outcomes[0][1]["total"] == direct_totals[0]


# ---------------------------------------------------------------------------
class TestGatewayThreadDiagnostics:
    def test_wedged_loop_raises_with_diagnostics_and_keeps_refs(
        self, service
    ):
        # Satellite: a join timeout used to silently null _thread/_loop,
        # leaking a wedged daemon thread with no signal.
        handle = GatewayThread(service)

        class StubLoop:
            def call_soon_threadsafe(self, callback, *args):
                pass

            def is_running(self):
                return False

            def stop(self):
                pass

        class StubThread:
            name = "repro-gateway"

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return True

        handle._loop = StubLoop()
        handle._thread = StubThread()
        with pytest.raises(RuntimeError, match="failed to stop") as excinfo:
            handle.stop()
        assert "queue_depth" in str(excinfo.value)
        # The refs survive so the caller can inspect or retry.
        assert handle._thread is not None
        assert handle._loop is not None


# ---------------------------------------------------------------------------
class _ScriptedTransportClient(ServingClient):
    """A client whose HTTP attempts and sleeps are fully scripted."""

    def __init__(self, script, **kwargs):
        self.script = list(script)
        self.attempts = 0
        self.sleeps = []
        kwargs.setdefault("rng", random.Random(7))
        super().__init__(sleep=self.sleeps.append, **kwargs)

    def _send(self, method, path, payload):
        self.attempts += 1
        item = self.script.pop(0)
        if isinstance(item, Exception):
            raise item
        return item


def _error_body(status, message="try later"):
    return {"error": {"status": status, "message": message}}


class TestServingClient:
    def test_retry_honors_retry_after_as_floor(self):
        client = _ScriptedTransportClient(
            [
                (429, {"retry-after": "3"}, _error_body(429)),
                (200, {}, {"total": 1.25}),
            ],
            backoff_base_s=0.01,
        )
        assert client.predict({"config": "C8", "events": {}}) == {"total": 1.25}
        assert client.attempts == 2
        assert len(client.sleeps) == 1
        assert client.sleeps[0] >= 3.0

    def test_backoff_grows_exponentially_with_jitter_and_cap(self):
        client = _ScriptedTransportClient(
            [(503, {}, _error_body(503))] * 4 + [(200, {}, {"ok": True})],
            max_retries=4,
            backoff_base_s=1.0,
            backoff_cap_s=4.0,
        )
        assert client.healthz() == {"ok": True}
        assert len(client.sleeps) == 4
        for attempt, slept in enumerate(client.sleeps):
            ceiling = min(4.0, 1.0 * 2**attempt)
            assert 0.5 * ceiling <= slept < ceiling

    def test_retry_budget_exhausted_raises_last_status(self):
        client = _ScriptedTransportClient(
            [(503, {}, _error_body(503, "draining"))] * 3, max_retries=2
        )
        with pytest.raises(ServingError) as excinfo:
            client.stats()
        assert excinfo.value.status == 503
        assert "draining" in str(excinfo.value)
        assert client.attempts == 3

    def test_non_retryable_status_raises_immediately(self):
        client = _ScriptedTransportClient(
            [(400, {}, _error_body(400, "bad config"))]
        )
        with pytest.raises(ServingError) as excinfo:
            client.predict({"config": "C999", "events": {}})
        assert excinfo.value.status == 400
        assert client.sleeps == []

    def test_connection_failures_are_retried_then_surface(self):
        client = _ScriptedTransportClient(
            [ConnectionRefusedError("nope")] * 2 + [(200, {}, {"ok": 1})],
            max_retries=3,
        )
        assert client.healthz() == {"ok": 1}
        assert client.attempts == 3
        exhausted = _ScriptedTransportClient(
            [ConnectionRefusedError("nope")] * 2, max_retries=1
        )
        with pytest.raises(ServingError) as excinfo:
            exhausted.healthz()
        assert excinfo.value.status is None

    def test_first_transport_failure_fails_over_without_sleeping(self):
        # Against an SO_REUSEPORT pool a reset means *that worker* died;
        # the immediate reconnect lands on a survivor, so the first
        # transport retry must not back off.
        client = _ScriptedTransportClient(
            [ConnectionResetError("worker died")] + [(200, {}, {"ok": 1})],
            max_retries=3,
        )
        assert client.healthz() == {"ok": 1}
        assert client.attempts == 2
        assert client.sleeps == []

    def test_repeated_transport_failures_back_off_after_failover_budget(self):
        client = _ScriptedTransportClient(
            [ConnectionResetError("down")] * 3 + [(200, {}, {"ok": 1})],
            max_retries=3,
            failover_retries=1,
            backoff_base_s=0.01,
        )
        assert client.healthz() == {"ok": 1}
        assert client.attempts == 4
        # First transport failure: free failover; the next two sleep.
        assert len(client.sleeps) == 2

    def test_failover_counter_resets_on_completed_exchange(self):
        # 503 (a completed HTTP exchange) resets the consecutive
        # transport-failure count, so the next reset is again free.
        client = _ScriptedTransportClient(
            [
                ConnectionResetError("worker died"),
                (503, {}, _error_body(503)),
                ConnectionResetError("worker died again"),
                (200, {}, {"ok": 1}),
            ],
            max_retries=5,
            backoff_base_s=0.01,
        )
        assert client.healthz() == {"ok": 1}
        assert client.attempts == 4
        assert len(client.sleeps) == 1  # only the 503 slept

    def test_failover_knob_validation(self):
        with pytest.raises(ValueError):
            ServingClient(failover_retries=-1)
        zero = _ScriptedTransportClient(
            [ConnectionResetError("down"), (200, {}, {"ok": 1})],
            failover_retries=0,
            backoff_base_s=0.01,
        )
        assert zero.healthz() == {"ok": 1}
        assert len(zero.sleeps) == 1  # no free failover with budget 0

    def test_live_round_trip_is_bitwise(
        self, service, requests8, direct_totals
    ):
        with GatewayThread(service, max_wait_ms=0.0) as handle:
            client = ServingClient(port=handle.port, max_retries=0)
            single = client.predict(requests8[0])
            many = client.predict_many(requests8[:3], deadline_ms=30_000)
            health = client.healthz()
        assert single["total"] == direct_totals[0]
        assert [obj["total"] for obj in many] == direct_totals[:3]
        assert health["status"] == "ok"
