"""Unit tests for repro.sim.activity (golden activity extraction)."""

import pytest

from repro.arch.config import config_by_name
from repro.arch.workloads import WORKLOADS, workload_by_name
from repro.rtl.generator import RtlGenerator
from repro.sim.activity import ActivitySimulator, PositionActivity


@pytest.fixture(scope="module")
def gen():
    return RtlGenerator()


@pytest.fixture(scope="module")
def sim():
    return ActivitySimulator()


class TestActivitySimulator:
    def test_covers_all_components(self, gen, sim):
        c8 = config_by_name("C8")
        act = sim.simulate(gen.generate(c8), c8, workload_by_name("qsort"))
        assert len(act.components) == 22

    def test_rates_in_unit_interval(self, gen, sim):
        for cname in ("C1", "C8", "C15"):
            config = config_by_name(cname)
            design = gen.generate(config)
            for workload in WORKLOADS:
                act = sim.simulate(design, config, workload)
                for comp in act.components.values():
                    assert 0.0 <= comp.gated_active_rate <= 1.0
                    assert 0.0 <= comp.data_toggle_rate <= 1.0
                    assert 0.0 <= comp.comb_switch_rate <= 1.0
                    for pos in comp.positions.values():
                        assert 0.0 <= pos.read_per_block_cycle <= 1.0
                        assert 0.0 <= pos.write_per_block_cycle <= 1.0

    def test_deterministic(self, gen, sim):
        c5 = config_by_name("C5")
        design = gen.generate(c5)
        w = workload_by_name("towers")
        assert sim.simulate(design, c5, w) == sim.simulate(design, c5, w)

    def test_sram_positions_match_design(self, gen, sim):
        c8 = config_by_name("C8")
        design = gen.generate(c8)
        act = sim.simulate(design, c8, workload_by_name("dhrystone"))
        for comp in design.components:
            names = {p.name for p in comp.sram_positions}
            assert set(act.components[comp.name].positions) == names

    def test_scale_increases_activity(self, gen, sim):
        c8 = config_by_name("C8")
        design = gen.generate(c8)
        w = workload_by_name("median")
        low = sim.simulate(design, c8, w, scale=0.5)
        high = sim.simulate(design, c8, w, scale=1.5)
        ups = sum(
            high.components[n].gated_active_rate > low.components[n].gated_active_rate
            for n in low.components
        )
        assert ups >= 18  # nearly all components go up with scale

    def test_invalid_scale_rejected(self, gen, sim):
        c1 = config_by_name("C1")
        with pytest.raises(ValueError):
            sim.simulate(gen.generate(c1), c1, workload_by_name("median"), scale=0.0)

    def test_zero_idiosyncrasy_is_pure_function(self, gen):
        clean = ActivitySimulator(idiosyncrasy=0.0)
        c3 = config_by_name("C3")
        design = gen.generate(c3)
        w = workload_by_name("rsort")
        a = clean.simulate(design, c3, w)
        b = clean.simulate(design, c3, w)
        assert a == b

    def test_mask_weighting_reduces_writes(self, gen, sim):
        # dcache_data has byte masks; its write frequency is mask-weighted.
        c8 = config_by_name("C8")
        design = gen.generate(c8)
        act = sim.simulate(design, c8, workload_by_name("qsort"))
        dcache = act.components["DCacheDataArray"].positions["dcache_data"]
        assert dcache.mask_valid_fraction < 1.0

    def test_unmasked_positions_have_full_mask(self, gen, sim):
        c8 = config_by_name("C8")
        design = gen.generate(c8)
        act = sim.simulate(design, c8, workload_by_name("qsort"))
        tags = act.components["ICacheTagArray"].positions["icache_tags"]
        assert tags.mask_valid_fraction == 1.0

    def test_busy_workload_more_active_than_idle(self, gen, sim):
        c8 = config_by_name("C8")
        design = gen.generate(c8)
        fast = sim.simulate(design, c8, workload_by_name("multiply"))
        slow = sim.simulate(design, c8, workload_by_name("spmv"))
        assert (
            fast.components["Int-ISU"].gated_active_rate
            > slow.components["Int-ISU"].gated_active_rate
        )


class TestPositionActivity:
    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            PositionActivity("x", -0.1, 0.0, 1.0)
        with pytest.raises(ValueError):
            PositionActivity("x", 0.1, 0.0, 1.5)
