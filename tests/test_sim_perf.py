"""Unit tests for repro.sim.perf (gem5-like simulator with error)."""

import numpy as np
import pytest

from repro.arch.config import config_by_name
from repro.arch.events import EVENT_NAMES
from repro.arch.workloads import workload_by_name
from repro.sim.perf import PerfSimulator, stable_seed
from repro.sim.uarch import execute


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", "b") == stable_seed("a", "b")

    def test_part_sensitive(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")
        assert stable_seed("ab") != stable_seed("a", "b")


class TestPerfSimulator:
    def test_reports_all_events(self):
        sim = PerfSimulator()
        ev = sim.run(config_by_name("C8"), workload_by_name("qsort"))
        assert set(ev.counts) == set(EVENT_NAMES)

    def test_deterministic(self):
        sim = PerfSimulator()
        c, w = config_by_name("C8"), workload_by_name("qsort")
        a = sim.run(c, w)
        b = sim.run(c, w)
        assert a.counts == b.counts

    def test_distortion_is_bounded(self):
        sim = PerfSimulator(bias_magnitude=0.07, noise_magnitude=0.015, width_drift=0.012)
        c, w = config_by_name("C8"), workload_by_name("qsort")
        true = execute(c, w)
        ev = sim.run(c, w)
        for name in EVENT_NAMES:
            if true.events[name] <= 0:
                continue
            rel = abs(ev.counts[name] - true.events[name]) / true.events[name]
            assert rel < 0.25, name

    def test_distortion_is_nonzero(self):
        sim = PerfSimulator()
        c, w = config_by_name("C8"), workload_by_name("qsort")
        true = execute(c, w)
        ev = sim.run(c, w)
        diffs = [
            abs(ev.counts[n] - true.events[n]) / max(true.events[n], 1e-9)
            for n in EVENT_NAMES
        ]
        assert np.mean(diffs) > 0.01

    def test_zero_error_simulator_is_exact(self):
        sim = PerfSimulator(bias_magnitude=0.0, noise_magnitude=0.0, width_drift=0.0)
        c, w = config_by_name("C8"), workload_by_name("qsort")
        true = execute(c, w)
        ev = sim.run(c, w)
        for name in EVENT_NAMES:
            assert ev.counts[name] == pytest.approx(true.events[name])

    def test_bias_is_systematic_across_configs(self):
        # Same (workload, event) -> same bias direction on any config.
        sim = PerfSimulator(noise_magnitude=0.0)
        w = workload_by_name("qsort")
        name = "dcache_misses"
        signs = []
        for cname in ("C2", "C5", "C9"):
            c = config_by_name(cname)
            true = execute(c, w)
            ev = sim.run(c, w)
            signs.append(np.sign(ev.counts[name] - true.events[name]))
        assert len(set(signs)) == 1

    def test_negative_magnitudes_rejected(self):
        with pytest.raises(ValueError):
            PerfSimulator(bias_magnitude=-0.1)
