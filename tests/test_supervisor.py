"""Supervisor tests: crash recovery, journal replay, degraded control plane.

Two layers:

* Unit tests for the supervision primitives — :class:`RestartBackoff`,
  :class:`CrashLoopBreaker` (driven by :class:`ManualClock`),
  :class:`AdminJournal`, foreign-pid reaps — no processes involved.
* Integration tests that really ``fork``: a :class:`Supervisor` over
  tiny *toy workers* (a loopback control listener plus an in-memory
  ``name -> generation`` model map, no gateway) exercises SIGKILL
  recovery, journal-replay convergence, the crash-loop breaker, the
  startup deadline, degraded/partial control-plane answers, and the
  stop-vs-death race, all with real processes and real reaping.

The integration tests run the supervisor on a background thread
(signal-handler installation is skipped off the main thread;
``request_stop()`` is the programmatic drain), with aggressive timings
so the whole file stays fast.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serving.faults import ManualClock, ProcessChaos
from repro.serving.fleet import reuse_port_supported, write_worker_announce
from repro.serving.supervisor import (
    AdminJournal,
    CrashLoopBreaker,
    RestartBackoff,
    Supervisor,
)


# ---------------------------------------------------------------------------
# Unit: the supervision primitives.


class TestRestartBackoff:
    def test_doubles_from_base_and_caps(self):
        backoff = RestartBackoff(base_ms=100, cap_ms=5000)
        assert backoff.delay_s(0) == 0.0
        assert backoff.delay_s(1) == pytest.approx(0.1)
        assert backoff.delay_s(2) == pytest.approx(0.2)
        assert backoff.delay_s(5) == pytest.approx(1.6)
        assert backoff.delay_s(7) == pytest.approx(5.0)
        assert backoff.delay_s(100) == pytest.approx(5.0)  # no overflow

    def test_zero_base_means_immediate_restart(self):
        assert RestartBackoff(base_ms=0).delay_s(3) == 0.0

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            RestartBackoff(base_ms=-1)
        with pytest.raises(ValueError):
            RestartBackoff(base_ms=1, cap_ms=-1)


class TestCrashLoopBreaker:
    def test_trips_past_max_restarts_within_window(self):
        clock = ManualClock()
        breaker = CrashLoopBreaker(max_restarts=2, window_s=30.0, clock=clock)
        assert breaker.record() is False  # crash 1
        assert breaker.record() is False  # crash 2: restarts still funded
        assert breaker.record() is True  # crash 3: > max_restarts -> trip
        assert breaker.tripped

    def test_crashes_age_out_of_the_window(self):
        clock = ManualClock()
        breaker = CrashLoopBreaker(max_restarts=1, window_s=10.0, clock=clock)
        breaker.record()
        clock.advance(11.0)
        assert breaker.record() is False  # the first crash aged out
        assert breaker.snapshot()["crashes_in_window"] == 1

    def test_zero_max_restarts_trips_on_first_crash(self):
        breaker = CrashLoopBreaker(max_restarts=0, clock=ManualClock())
        assert breaker.record() is True

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            CrashLoopBreaker(max_restarts=-1)
        with pytest.raises(ValueError):
            CrashLoopBreaker(window_s=0)


class TestAdminJournal:
    def test_append_since_ordering(self):
        journal = AdminJournal()
        assert len(journal) == 0
        s0 = journal.append("PUT", "/models/a", b"{}", {"H": "1"})
        s1 = journal.append("DELETE", "/models/a", None, {})
        assert (s0, s1) == (0, 1)
        assert [op["seq"] for op in journal.since(0)] == [0, 1]
        tail = journal.since(1)
        assert len(tail) == 1 and tail[0]["method"] == "DELETE"
        assert journal.since(2) == []

    def test_snapshot_never_exposes_bodies_or_headers(self):
        # Bearer tokens ride in admin headers; the /stats journal view
        # must stay method/path/seq only.
        journal = AdminJournal()
        journal.append(
            "PUT", "/models/a", b'{"secret": 1}',
            {"Authorization": "Bearer hunter2"},
        )
        snap = json.dumps(journal.snapshot())
        assert "hunter2" not in snap
        assert "secret" not in snap
        assert journal.snapshot()["entries"] == 1
        assert journal.snapshot()["tail"][0]["path"] == "/models/a"


class TestAdminJournalCompaction:
    def test_keeps_only_the_last_put_per_model(self):
        journal = AdminJournal()
        for generation in range(5):
            journal.append("PUT", "/models/a", f"g{generation}".encode(), {})
        journal.append("PUT", "/models/b", b"only", {})
        summary = journal.compact()
        assert summary == {"kept": 2, "dropped": 4}
        ops = journal.since(0)
        assert [(op["path"], op["body"]) for op in ops] == [
            ("/models/a", b"g4"),
            ("/models/b", b"only"),
        ]
        # Replay numbering is contiguous from zero again.
        assert [op["seq"] for op in ops] == [0, 1]

    def test_trailing_delete_keeps_its_put_so_replay_never_404s(self):
        journal = AdminJournal()
        journal.append("PUT", "/models/a", b"1", {})
        journal.append("PUT", "/models/a", b"2", {})
        journal.append("DELETE", "/models/a", None, {})
        journal.compact()
        ops = journal.since(0)
        # A fresh worker replays PUT-then-DELETE: the DELETE lands on a
        # model that exists, exactly like the uncompacted history.
        assert [op["method"] for op in ops] == ["PUT", "DELETE"]
        assert ops[0]["body"] == b"2"

    def test_bare_delete_of_a_preloaded_model_is_kept(self):
        # CLI-preloaded models have no journaled PUT; their DELETE must
        # survive compaction or replay would resurrect them.
        journal = AdminJournal()
        journal.append("DELETE", "/models/preloaded", None, {})
        journal.append("PUT", "/models/b", b"x", {})
        assert journal.compact() == {"kept": 2, "dropped": 0}
        assert [op["method"] for op in journal.since(0)] == ["DELETE", "PUT"]

    def test_compaction_is_counted_in_the_snapshot(self):
        journal = AdminJournal()
        for _ in range(3):
            journal.append("PUT", "/models/a", b"x", {})
        journal.compact()
        snap = journal.snapshot()
        assert snap["entries"] == 1
        assert snap["compactions"] == 1
        assert snap["dropped_ops"] == 2

    def test_replay_after_compaction_is_state_equivalent(self):
        journal = AdminJournal()
        models: dict[str, bytes] = {}
        script = [
            ("PUT", "/models/a", b"a1"),
            ("PUT", "/models/b", b"b1"),
            ("PUT", "/models/a", b"a2"),
            ("DELETE", "/models/b", None),
            ("PUT", "/models/c", b"c1"),
        ]
        for method, path, body in script:
            journal.append(method, path, body, {})
            if method == "PUT":
                models[path] = body
            else:
                models.pop(path, None)
        journal.compact()
        replayed: dict[str, bytes] = {}
        for op in journal.since(0):
            if op["method"] == "PUT":
                replayed[op["path"]] = op["body"]
            else:
                replayed.pop(op["path"], None)
        assert replayed == models

    def test_supervisor_threshold_gates_compaction(self):
        supervisor = Supervisor(
            "127.0.0.1", 0, 1, lambda *_: 0, journal_compact_threshold=4
        )
        for _ in range(3):
            supervisor.journal.append("PUT", "/models/a", b"x", {})
        supervisor._maybe_compact_journal()
        assert len(supervisor.journal) == 3  # below threshold: untouched
        supervisor.journal.append("PUT", "/models/a", b"x", {})
        supervisor._maybe_compact_journal()
        assert len(supervisor.journal) == 1
        assert supervisor.journal.compactions == 1

    def test_compaction_skipped_while_any_slot_replays(self):
        supervisor = Supervisor(
            "127.0.0.1", 0, 1, lambda *_: 0, journal_compact_threshold=2
        )
        for _ in range(4):
            supervisor.journal.append("PUT", "/models/a", b"x", {})
        supervisor.slots[0].state = "replaying"
        supervisor._maybe_compact_journal()
        assert len(supervisor.journal) == 4  # old numbering still in use
        supervisor.slots[0].state = "ready"
        supervisor._maybe_compact_journal()
        assert len(supervisor.journal) == 1

    def test_zero_threshold_disables_compaction(self):
        supervisor = Supervisor(
            "127.0.0.1", 0, 1, lambda *_: 0, journal_compact_threshold=0
        )
        for _ in range(10):
            supervisor.journal.append("PUT", "/models/a", b"x", {})
        supervisor._maybe_compact_journal()
        assert len(supervisor.journal) == 10


class TestSupervisorUnit:
    def test_knob_validation(self):
        for kwargs in (
            {"startup_timeout_s": 0},
            {"call_timeout_s": 0},
        ):
            with pytest.raises(ValueError):
                Supervisor("127.0.0.1", 0, 1, lambda *_: 0, **kwargs)
        with pytest.raises(ValueError):
            Supervisor("127.0.0.1", 0, 0, lambda *_: 0)

    def test_foreign_pid_reap_is_counted_and_ignored(self):
        # A reparented grandchild's exit must not disturb any slot.
        sup = Supervisor("127.0.0.1", 0, 2, lambda *_: 0)
        sup.slots[0].pid = 11
        sup.slots[1].pid = 22
        sup._handle_exit(99999, 0)
        assert sup.foreign_reaps == 1
        assert [s.state for s in sup.slots] == ["starting", "starting"]
        assert not sup.crash_log

    def test_admin_with_no_ready_workers_is_503(self):
        sup = Supervisor("127.0.0.1", 0, 1, lambda *_: 0)
        status, body = sup.admin("PUT", "/models/x", b"{}", {})
        assert status == 503
        assert len(sup.journal) == 0  # nothing accepted, nothing journaled


# ---------------------------------------------------------------------------
# Integration: real forked toy workers under a live supervisor.


def _toy_worker(
    announce_fd: int,
    bound_port: int,
    exit_code: int = 0,
    drain_delay_s: float = 0.0,
    chaos_dir: str | None = None,
    healthz_hang_file: str | None = None,
) -> int:
    """A minimal supervised worker: control listener + model-gen map.

    Mirrors the real worker contract (announce, admin generations that
    are a pure function of the op sequence, SIGTERM drain) without a
    gateway, so supervisor tests stay fast.
    """
    if chaos_dir is not None:
        ProcessChaos(chaos_dir).enact("startup")
    models = {"default": 1}

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *_args) -> None:
            pass

        def _reply(self, status: int, payload: dict) -> None:
            raw = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                # The hang file names one target pid, so a test can hang
                # exactly one worker out of the pool.
                if healthz_hang_file and os.path.exists(healthz_hang_file):
                    with open(healthz_hang_file) as fh:
                        if fh.read().strip() == str(os.getpid()):
                            time.sleep(30.0)
                self._reply(200, {"status": "ok", "pid": os.getpid()})
            elif self.path == "/stats":
                self._reply(200, {"requests": 1, "pid": os.getpid()})
            elif self.path == "/models":
                self._reply(
                    200,
                    {
                        "models": {
                            name: {"name": name, "generation": gen}
                            for name, gen in models.items()
                        }
                    },
                )
            else:
                self._reply(404, {})

        def do_PUT(self) -> None:
            name = self.path.removeprefix("/models/")
            length = int(self.headers.get("Content-Length", "0") or "0")
            if length:
                self.rfile.read(length)
            models[name] = models.get(name, 0) + 1
            self._reply(200, {"name": name, "generation": models[name]})

        def do_DELETE(self) -> None:
            name = self.path.removeprefix("/models/")
            if models.pop(name, None) is None:
                self._reply(404, {})
            else:
                self._reply(200, {"unloaded": True})

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    server.daemon_threads = True
    threading.Thread(target=server.serve_forever, daemon=True).start()
    write_worker_announce(announce_fd, bound_port, server.server_address[1])
    stop.wait(60.0)
    if drain_delay_s:
        time.sleep(drain_delay_s)
    server.shutdown()
    server.server_close()
    return exit_code


def _crashing_worker(_announce_fd: int, _bound_port: int) -> int:
    return 3  # dies before announcing, every time


class _Run:
    """A supervisor running on a background thread, with its result."""

    def __init__(self, sup: Supervisor):
        self.sup = sup
        self.result: int | None = None
        self.thread = threading.Thread(target=self._main, daemon=True)
        self.thread.start()

    def _main(self) -> None:
        self.result = self.sup.run()

    def wait_for(self, predicate, timeout: float = 20.0, what: str = ""):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            value = predicate()
            if value:
                return value
            time.sleep(0.01)
        raise AssertionError(
            f"timed out waiting for {what or predicate}: "
            f"{self.sup.snapshot()}"
        )

    def wait_all_ready(self, timeout: float = 20.0) -> None:
        self.wait_for(
            lambda: self.sup.snapshot()["ready"] == self.sup.n_workers,
            timeout,
            "all workers ready",
        )

    def stop(self, timeout: float = 30.0) -> int:
        self.sup.request_stop()
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "supervisor failed to exit"
        return self.result

    def join(self, timeout: float = 30.0) -> int:
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "supervisor failed to exit"
        return self.result


@pytest.fixture
def launch():
    """Launch supervisors and guarantee their children die at teardown."""
    runs: list[_Run] = []

    def _launch(worker_main, n_workers: int = 2, **kwargs) -> _Run:
        kwargs.setdefault("restart_backoff_ms", 10.0)
        kwargs.setdefault("startup_timeout_s", 20.0)
        kwargs.setdefault("poll_interval_s", 0.01)
        run = _Run(
            Supervisor("127.0.0.1", 0, n_workers, worker_main, **kwargs)
        )
        runs.append(run)
        return run

    yield _launch
    for run in runs:
        run.sup.request_stop()
        run.thread.join(10.0)
        for slot in run.sup.slots:  # belt and braces: no stray children
            if slot.pid is not None:
                try:
                    os.kill(slot.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass


def _control_get(port: int, path: str, timeout: float = 10.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _generations(sup: Supervisor) -> list[dict]:
    results = sup.fan_out_get("/models", {})
    return [
        {m["name"]: m["generation"] for m in r["body"]["models"].values()}
        for r in results
        if r.get("status") == 200
    ]


needs_fork = pytest.mark.skipif(
    not reuse_port_supported(),
    reason="needs os.fork and SO_REUSEPORT",
)


@needs_fork
class TestSupervisedPool:
    def test_sigkill_restart_and_journal_replay_convergence(self, launch):
        run = launch(_toy_worker)
        run.wait_all_ready()

        # Admin ops enter the journal once accepted.
        status, body = run.sup.admin("PUT", "/models/extra", b"{}", {})
        assert status == 200
        assert body["accepted"] == 2 and body["journal_seq"] == 0
        status, _b = run.sup.admin("PUT", "/models/default", b"{}", {})
        assert status == 200  # default -> generation 2

        victim = run.sup.slots[0].pid
        os.kill(victim, signal.SIGKILL)
        run.wait_for(
            lambda: run.sup.snapshot()["ready"] == 2
            and run.sup.snapshot()["restarts"] == 1,
            what="heal after SIGKILL",
        )
        assert run.sup.slots[0].pid != victim

        # The replacement replayed the journal: same names, same gens.
        gens = _generations(run.sup)
        assert len(gens) == 2
        assert gens[0] == gens[1] == {"default": 2, "extra": 1}
        snap = run.sup.snapshot()
        assert snap["crashes"] == 1
        assert snap["slots"][0]["replayed"] == 2

        # Ops after the heal fan out to both (including the newcomer).
        status, body = run.sup.admin("DELETE", "/models/extra", None, {})
        assert status == 200 and body["accepted"] == 2
        gens = _generations(run.sup)
        assert gens[0] == gens[1] == {"default": 2}
        assert run.stop() == 0

    def test_degraded_capacity_keeps_serving_and_reports(self, launch):
        # A long backoff freezes the pool in degraded mode so the
        # control-plane answers are deterministic.
        run = launch(_toy_worker, restart_backoff_ms=60_000.0)
        run.wait_all_ready()
        victim = run.sup.slots[1].pid
        os.kill(victim, signal.SIGKILL)
        run.wait_for(
            lambda: run.sup.snapshot()["ready"] == 1, what="degraded state"
        )

        status, body = _control_get(run.sup.control_port, "/healthz")
        assert status == 200  # degraded, NOT an error: probes must pass
        assert body["status"] == "degraded"
        assert body["supervisor"]["degraded"] is True

        # Partial observability: the survivor's stats still merge.
        status, body = _control_get(run.sup.control_port, "/stats")
        assert status == 200
        assert body["partial"] is True
        assert body["merged"]["requests"] == 1
        assert len(body["workers"]) == 1
        assert body["supervisor"]["slots"][1]["state"] == "backoff"

        # Admin ops keep landing on the survivor (and the journal), so
        # the eventual replacement still converges.
        status, admin_body = run.sup.admin("PUT", "/models/x", b"{}", {})
        assert status == 200 and admin_body["accepted"] == 1
        assert len(run.sup.journal) == 1
        assert run.stop() == 0

    def test_hung_worker_degrades_fanout_instead_of_stalling(
        self, launch, tmp_path
    ):
        # Satellite: a hung worker must cost call_timeout_s, answered as
        # degraded — not a 60s stall or a whole-fan-out 502.
        hang_file = str(tmp_path / "hang")
        run = launch(
            lambda fd, port: _toy_worker(
                fd, port, healthz_hang_file=hang_file
            ),
            call_timeout_s=0.3,
        )
        run.wait_all_ready()
        victim = run.sup.slots[0].pid
        with open(hang_file, "w") as fh:
            fh.write(str(victim))
        start = time.monotonic()
        status, body = _control_get(run.sup.control_port, "/healthz")
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, "short per-worker timeout must bound the fan-out"
        assert status == 200 and body["status"] == "degraded"
        errored = [w for w in body["workers"] if "error" in w]
        assert len(errored) == 1 and errored[0]["pid"] == victim
        os.unlink(hang_file)
        status, body = _control_get(run.sup.control_port, "/healthz")
        assert status == 200 and body["status"] == "ok"
        assert run.stop() == 0

    def test_crash_loop_gives_up_with_diagnostics(self, launch, capfd):
        run = launch(
            _crashing_worker,
            max_restarts=2,
            restart_window_s=30.0,
        )
        assert run.join(timeout=30.0) == 1
        err = capfd.readouterr().err
        assert "crash-loop" in err
        assert "exited 3 before announcing" in err
        assert "(slot" in err  # per-pid, per-slot diagnostics
        snap = run.sup.snapshot()
        assert snap["gave_up"] is True
        assert snap["breaker"]["tripped"] is True

    def test_startup_hang_is_killed_and_replaced(
        self, launch, tmp_path, capfd
    ):
        chaos_dir = str(tmp_path / "chaos")
        ProcessChaos(chaos_dir).arm("hang-startup", 1, hang_s=60)
        run = launch(
            lambda fd, port: _toy_worker(fd, port, chaos_dir=chaos_dir),
            startup_timeout_s=0.5,
        )
        run.wait_all_ready(timeout=30.0)
        snap = run.sup.snapshot()
        assert snap["restarts"] >= 1
        assert any(
            "startup deadline" in (entry["exit"] or "")
            for entry in run.sup.crash_log
        )
        assert "did not announce within" in capfd.readouterr().err
        assert run.stop() == 0

    def test_no_supervise_fail_fast(self, launch, capfd):
        run = launch(_toy_worker, supervise=False)
        run.wait_all_ready()
        os.kill(run.sup.slots[0].pid, signal.SIGKILL)
        assert run.join(timeout=30.0) == 1
        err = capfd.readouterr().err
        assert "fail-fast" in err
        assert run.sup.snapshot()["restarts"] == 0

    def test_clean_drain_exits_zero_without_restarts(self, launch, capfd):
        run = launch(_toy_worker)
        run.wait_all_ready()
        assert run.stop() == 0
        out = capfd.readouterr().out
        assert "all workers drained" in out
        assert run.sup.snapshot()["restarts"] == 0

    def test_nonzero_exit_during_requested_stop_is_failure(
        self, launch, capfd
    ):
        run = launch(lambda fd, port: _toy_worker(fd, port, exit_code=7))
        run.wait_all_ready()
        assert run.stop() == 1
        assert "workers exited non-zero" in capfd.readouterr().err

    def test_death_during_stop_does_not_restart(self, launch):
        # The stop-vs-unexpected-death race: a worker SIGKILLed while
        # the pool is draining is a failed exit, never a restart.
        run = launch(
            lambda fd, port: _toy_worker(fd, port, drain_delay_s=1.0)
        )
        run.wait_all_ready()
        victim = run.sup.slots[0].pid
        run.sup.request_stop()
        os.kill(victim, signal.SIGKILL)
        assert run.join(timeout=30.0) == 1
        snap = run.sup.snapshot()
        assert snap["restarts"] == 0
        assert snap["crashes"] == 0  # death during stop is not a crash
