"""Unit tests for repro.core.features."""

import numpy as np
import pytest

from repro.arch.config import config_by_name
from repro.arch.events import COMPONENT_EVENTS
from repro.arch.workloads import workload_by_name
from repro.core.features import (
    event_feature_names,
    event_features,
    hardware_feature_names,
    hardware_features,
    polynomial_hardware_feature_names,
    polynomial_hardware_features,
    program_feature_names,
    program_features,
)
from repro.sim.perf import PerfSimulator


@pytest.fixture(scope="module")
def events_c8():
    return PerfSimulator().run(config_by_name("C8"), workload_by_name("qsort"))


class TestHardwareFeatures:
    def test_table3_order(self):
        c8 = config_by_name("C8")
        feats = hardware_features(c8, "ROB")
        assert feats.tolist() == [c8["DecodeWidth"], c8["RobEntry"]]

    def test_polynomial_expansion_size(self):
        c8 = config_by_name("C8")
        base = hardware_features(c8, "Regfile")  # 3 params
        poly = polynomial_hardware_features(c8, "Regfile")
        assert poly.size == 3 + 6  # raw + upper-triangular products

    def test_polynomial_values(self):
        c8 = config_by_name("C8")
        poly = polynomial_hardware_features(c8, "ROB")
        dw, rob = c8["DecodeWidth"], c8["RobEntry"]
        assert poly.tolist() == [dw, rob, dw * dw, dw * rob, rob * rob]

    def test_polynomial_names_align(self):
        names = polynomial_hardware_feature_names("ROB")
        c8 = config_by_name("C8")
        assert len(names) == polynomial_hardware_features(c8, "ROB").size
        assert "DecodeWidth*RobEntry" in names


class TestEventFeatures:
    def test_legacy_form_rates_plus_ipc(self, events_c8):
        feats = event_features(events_c8, "ROB")
        assert feats.size == len(COMPONENT_EVENTS["ROB"]) + 1
        assert feats[-1] == pytest.approx(events_c8.ipc)

    def test_full_form_with_config(self, events_c8):
        c8 = config_by_name("C8")
        feats = event_features(events_c8, "ROB", c8)
        n_events = len(COMPONENT_EVENTS["ROB"])
        n_params = len(hardware_feature_names("ROB"))
        assert feats.size == n_events + n_events * n_params + 1

    def test_normalized_only(self, events_c8):
        c8 = config_by_name("C8")
        feats = event_features(events_c8, "ROB", c8, include_raw=False)
        n_events = len(COMPONENT_EVENTS["ROB"])
        n_params = len(hardware_feature_names("ROB"))
        assert feats.size == n_events * n_params + 1

    def test_normalization_divides_by_parameter(self, events_c8):
        c8 = config_by_name("C8")
        full = event_features(events_c8, "ROB", c8)
        n_events = len(COMPONENT_EVENTS["ROB"])
        raw = full[:n_events]
        norm = full[n_events:-1].reshape(n_events, -1)
        params = [c8[p] for p in hardware_feature_names("ROB")]
        for i in range(n_events):
            for j, value in enumerate(params):
                assert norm[i, j] == pytest.approx(raw[i] / value)

    def test_names_match_lengths(self, events_c8):
        c8 = config_by_name("C8")
        names = event_feature_names("LSU")
        feats = event_features(events_c8, "LSU", c8)
        assert len(names) == feats.size

    def test_normalized_only_requires_config(self, events_c8):
        with pytest.raises(ValueError):
            event_features(events_c8, "ROB", None, include_raw=False)


class TestProgramFeatures:
    def test_vector_matches_names(self):
        w = workload_by_name("spmv")
        assert program_features(w).size == len(program_feature_names())

    def test_microarchitecture_independent(self):
        # Identical regardless of configuration — by construction.
        w = workload_by_name("spmv")
        assert np.array_equal(program_features(w), program_features(w))
