"""Integration tests: the paper's headline findings, end to end.

These tests exercise the whole stack — flow, feature extraction, all
sub-models, baselines — and assert the *shape* of the paper's results:

1. AutoPower beats McPAT-Calib on MAPE and R² in the 2-config few-shot
   setting (paper Fig. 4).
2. AutoPower beats the AutoPower− ablation on the clock and SRAM groups
   (paper Figs. 7 and 8).
3. Accuracy improves from 2 to 3 training configurations (paper Fig. 5).
"""

import pytest

from repro.arch.config import config_by_name
from repro.baselines.mcpat_calib import McPatCalib
from repro.baselines.autopower_minus import AutoPowerMinus
from repro.core.autopower import AutoPower
from repro.ml.metrics import mape, pearson_r, r2_score


@pytest.fixture(scope="module")
def mcpat_calib(flow, train_configs, workloads):
    return McPatCalib().fit(flow, train_configs, workloads)


@pytest.fixture(scope="module")
def autopower_minus(flow, train_configs, workloads):
    return AutoPowerMinus().fit(flow, train_configs, workloads)


@pytest.fixture(scope="module")
def eval_points(flow, test_configs, workloads):
    return [(c, w, flow.run(c, w)) for c in test_configs for w in workloads]


class TestHeadline:
    def test_autopower_beats_mcpat_calib(
        self, autopower2, mcpat_calib, eval_points
    ):
        true = [res.power.total for _, _, res in eval_points]
        ours = [
            autopower2.predict_total(c, res.events, w) for c, w, res in eval_points
        ]
        calib = [
            mcpat_calib.predict_total(c, res.events) for c, w, res in eval_points
        ]
        # Paper Fig. 4: 4.36 % / 0.96 vs 9.29 % / 0.87.
        assert mape(true, ours) < mape(true, calib)
        assert r2_score(true, ours) > r2_score(true, calib)
        # Quantitative bands for the synthetic substrate.
        assert mape(true, ours) < 10.0
        assert r2_score(true, ours) > 0.88

    def test_autopower_beats_minus_on_clock(
        self, autopower2, autopower_minus, eval_points
    ):
        true, ours, minus = [], [], []
        for c, w, res in eval_points:
            true.append(res.power.group_total("clock"))
            ours.append(sum(autopower2.clock_model.predict(c, res.events).values()))
            minus.append(autopower_minus.predict_group(c, res.events, w, "clock"))
        assert mape(true, ours) < mape(true, minus)
        assert pearson_r(true, ours) > 0.9  # paper: R = 0.93

    def test_autopower_beats_minus_on_sram(
        self, autopower2, autopower_minus, eval_points
    ):
        true, ours, minus = [], [], []
        for c, w, res in eval_points:
            true.append(res.power.group_total("sram"))
            ours.append(sum(autopower2.sram_model.predict(c, res.events, w).values()))
            minus.append(autopower_minus.predict_group(c, res.events, w, "sram"))
        assert mape(true, ours) < mape(true, minus)
        assert pearson_r(true, ours) > 0.9  # paper: R = 0.94

    def test_three_configs_better_than_two(self, flow, workloads):
        # Paper Fig. 5 vs Fig. 4: accuracy improves with a third config.
        train3 = [config_by_name(n) for n in ("C1", "C8", "C15")]
        model3 = AutoPower(library=flow.library).fit(flow, train3, workloads)
        test3 = [
            config_by_name(f"C{i}") for i in range(1, 16) if i not in (1, 8, 15)
        ]
        true3, pred3 = [], []
        for c in test3:
            for w in workloads:
                res = flow.run(c, w)
                true3.append(res.power.total)
                pred3.append(model3.predict_total(c, res.events, w))
        assert mape(true3, pred3) < 8.0
        assert r2_score(true3, pred3) > 0.9

    def test_per_workload_errors_balanced(self, autopower2, eval_points, workloads):
        # No single workload should dominate the error budget (sanity of
        # the scatter in Fig. 4b).
        per_workload: dict[str, list[float]] = {w.name: [] for w in workloads}
        for c, w, res in eval_points:
            pred = autopower2.predict_total(c, res.events, w)
            per_workload[w.name].append(
                abs(pred - res.power.total) / res.power.total * 100.0
            )
        worst = max(sum(v) / len(v) for v in per_workload.values())
        assert worst < 20.0
