"""Tests for ``repro.serving``: wire codec, micro-batcher, HTTP gateway.

The core contract under test: responses served through the gateway (and
therefore through the cross-request micro-batcher and the JSON wire) are
bitwise-equal to direct :meth:`PredictionService.submit_many` calls for
the same requests.
"""

from __future__ import annotations

import asyncio
import http.client
import json

import numpy as np
import pytest

import repro.api as api
from repro.serving import GatewayThread, MicroBatcher, WireError
from repro.serving import wire


@pytest.fixture(scope="module")
def mcpat_model(flow):
    """The analytical baseline: totals only, workload optional."""
    return api.fit("mcpat", flow=flow)


@pytest.fixture(scope="module")
def total_requests(flow, test_configs, workloads):
    """A 3-config x 3-workload grid of total-power requests."""
    return [
        api.PredictRequest(config=c, events=flow.run(c, w).events, workload=w)
        for c in test_configs[:3]
        for w in workloads[:3]
    ]


@pytest.fixture(scope="module")
def ap_gateway(autopower2):
    """A live gateway thread over a fitted AutoPower model."""
    with GatewayThread(
        api.PredictionService(autopower2), max_wait_ms=1.0
    ) as handle:
        yield handle


@pytest.fixture(scope="module")
def mcpat_gateway(mcpat_model):
    """A live gateway over the reports-free analytical baseline."""
    with GatewayThread(
        api.PredictionService(mcpat_model), max_wait_ms=0.0
    ) as handle:
        yield handle


def _http(port, method, path, payload=None, raw_body=None):
    """One HTTP round trip; returns (status, decoded JSON body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    body = raw_body if raw_body is not None else (
        None if payload is None else json.dumps(payload)
    )
    conn.request(method, path, body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    decoded = json.loads(response.read().decode("utf-8"))
    conn.close()
    return response.status, decoded


class TestWire:
    def test_total_request_round_trips(self, total_requests):
        request = total_requests[0]
        clone = wire.decode_request(wire.encode_request(request))
        assert clone.config.name == request.config.name
        assert clone.workload.name == request.workload.name
        assert clone.kind == "total"
        assert clone.events.counts == request.events.counts

    def test_trace_request_round_trips(self, total_requests):
        request = api.PredictRequest(
            total_requests[0].config,
            total_requests[0].events,
            total_requests[0].workload,
            kind="trace",
            scales=np.linspace(0.7, 1.3, 7),
            window_cycles=40,
        )
        clone = wire.decode_request(wire.encode_request(request))
        assert clone.kind == "trace"
        assert clone.window_cycles == 40
        np.testing.assert_array_equal(clone.scales, request.scales)

    def test_workload_free_request_round_trips(self, total_requests):
        request = api.PredictRequest(
            total_requests[0].config, total_requests[0].events, None
        )
        encoded = wire.encode_request(request)
        assert "workload" not in encoded
        assert wire.decode_request(encoded).workload is None

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda obj: obj.update(shoe_size=43), "unknown request fields"),
            (lambda obj: obj.pop("config"), "config"),
            (lambda obj: obj.pop("events"), "events"),
            (lambda obj: obj.update(config="C999"), "C999"),
            (lambda obj: obj.update(kind="banana"), "kind"),
            (lambda obj: obj.update(workload=42), "workload"),
            (lambda obj: obj["events"].update(weird_event=1.0), "weird_event"),
            (lambda obj: obj["events"].update(cycles="many"), "numbers"),
            (lambda obj: obj.update(kind="trace", scales=[]), "scale"),
            (lambda obj: obj.update(kind="trace", scales=[-1.0]), "positive"),
            (
                lambda obj: obj.update(
                    kind="trace", scales=[1.0], window_cycles=0
                ),
                "window_cycles",
            ),
        ],
    )
    def test_malformed_requests_are_400(self, total_requests, mutate, match):
        obj = wire.encode_request(total_requests[0])
        obj["events"] = dict(obj["events"])
        mutate(obj)
        with pytest.raises(WireError, match=match) as excinfo:
            wire.decode_request(obj)
        assert excinfo.value.status == 400

    def test_non_object_request_is_400(self):
        with pytest.raises(WireError, match="object") as excinfo:
            wire.decode_request([1, 2, 3])
        assert excinfo.value.status == 400

    def test_unsupported_kind_for_model_is_422(
        self, mcpat_model, total_requests
    ):
        obj = wire.encode_request(total_requests[0])
        obj["kind"] = "report"
        with pytest.raises(WireError, match="report") as excinfo:
            wire.decode_request(obj, model=mcpat_model)
        assert excinfo.value.status == 422

    def test_supported_kinds(self, autopower2, mcpat_model):
        assert wire.supported_kinds(autopower2) == ("total", "report", "trace")
        assert wire.supported_kinds(mcpat_model) == ("total",)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce_bitwise(
        self, autopower2, total_requests
    ):
        direct = api.PredictionService(autopower2).submit_many(total_requests)

        service = api.PredictionService(autopower2)

        async def run():
            batcher = MicroBatcher(service, max_batch_size=64, max_wait_ms=50.0)
            await batcher.start()
            try:
                responses = await asyncio.gather(
                    *(batcher.submit(r) for r in total_requests)
                )
            finally:
                await batcher.stop()
            return responses, batcher.flushes, batcher.max_flush_size

        responses, flushes, max_flush = asyncio.run(run())
        assert [r.total for r in responses] == [r.total for r in direct]
        # The whole point: requests from concurrent callers shared flushes.
        assert flushes < len(total_requests)
        assert max_flush > 1

    def test_mixed_workload_presence_is_partitioned(
        self, mcpat_model, total_requests
    ):
        # Direct submit_many rejects a workload mix inside one chunk; the
        # batcher partitions across callers, so both halves are served.
        service = api.PredictionService(mcpat_model)
        request = total_requests[0]
        bare = api.PredictRequest(request.config, request.events, None)

        async def run():
            batcher = MicroBatcher(service, max_wait_ms=50.0)
            await batcher.start()
            try:
                return await asyncio.gather(
                    batcher.submit(request), batcher.submit(bare)
                )
            finally:
                await batcher.stop()

        with_wl, without_wl = asyncio.run(run())
        assert with_wl.total == service.predict(request).total
        assert without_wl.total == service.predict(
            api.PredictRequest(request.config, request.events, None)
        ).total

    def test_poison_request_fails_alone(self, mcpat_model, total_requests):
        # An unservable request that reaches the batcher (report kind on a
        # reports-free model) must fail only its own caller.
        service = api.PredictionService(mcpat_model)
        request = total_requests[0]
        poison = api.PredictRequest(
            request.config, request.events, request.workload, kind="report"
        )

        async def run():
            batcher = MicroBatcher(service, max_wait_ms=50.0)
            await batcher.start()
            try:
                return await asyncio.gather(
                    batcher.submit(total_requests[0]),
                    batcher.submit(poison),
                    batcher.submit(total_requests[1]),
                    return_exceptions=True,
                )
            finally:
                await batcher.stop()

        first, failed, second = asyncio.run(run())
        assert isinstance(failed, TypeError)
        assert first.total == service.predict(total_requests[0]).total
        assert second.total == service.predict(total_requests[1]).total

    def test_hard_stop_fails_in_flight_futures_instead_of_hanging(
        self, total_requests
    ):
        # Regression: stop() during an in-flight flush used to abandon
        # that batch's futures (they were already out of the queue), so
        # their submitters awaited forever.  The hard stop must fail
        # them promptly instead.
        import time

        class SlowService:
            def submit_many(self, requests):
                time.sleep(0.5)
                return list(requests)

        async def run():
            batcher = MicroBatcher(SlowService(), max_wait_ms=0.0)
            await batcher.start()
            pending = asyncio.ensure_future(
                batcher.submit(total_requests[0])
            )
            await asyncio.sleep(0.05)  # let the flush start
            await batcher.stop(drain=False)
            return await asyncio.wait_for(
                asyncio.gather(pending, return_exceptions=True), timeout=5
            )

        (outcome,) = asyncio.run(run())
        assert isinstance(outcome, RuntimeError)
        assert "stopped" in str(outcome)

    def test_stop_drains_in_flight_futures_to_completion(
        self, mcpat_model, total_requests
    ):
        # The graceful default: stop() completes everything already
        # accepted — in-flight and still-queued — bitwise-equal to
        # direct service calls, instead of failing the futures.
        service = api.PredictionService(mcpat_model)
        direct = [service.predict(r).total for r in total_requests[:4]]

        async def run():
            batcher = MicroBatcher(service, max_wait_ms=50.0)
            await batcher.start()
            pending = [
                asyncio.ensure_future(batcher.submit(r))
                for r in total_requests[:4]
            ]
            await asyncio.sleep(0)  # enqueue, but don't wait for a flush
            await batcher.stop(drain=True, drain_timeout=30.0)
            return await asyncio.gather(*pending)

        responses = asyncio.run(run())
        assert [r.total for r in responses] == direct

    def test_queue_full_rejection_order_is_fifo(self, mcpat_model, total_requests):
        # Admission is strictly first-come-first-admitted: with capacity
        # k and a wedged collector, submissions 1..k are accepted and
        # every later one is refused with 429 — never an earlier one.
        import threading

        from repro.serving import OverloadError, ResilienceConfig

        service = api.PredictionService(mcpat_model)
        release = threading.Event()

        class GatedService:
            def submit_many(self, requests):
                release.wait(30)
                return service.submit_many(requests)

        async def run():
            batcher = MicroBatcher(
                GatedService(),
                max_wait_ms=0.0,
                resilience=ResilienceConfig(queue_depth=2),
            )
            await batcher.start()
            # First submission is pulled by the collector and wedges in
            # the gated model call; the queue is then free for exactly 2.
            first = asyncio.ensure_future(batcher.submit(total_requests[0]))
            await asyncio.sleep(0.05)
            accepted = [
                asyncio.ensure_future(batcher.submit(r))
                for r in total_requests[1:3]
            ]
            await asyncio.sleep(0)  # let them enqueue
            rejections = []
            for request in total_requests[3:6]:
                try:
                    await batcher.submit(request)
                except OverloadError as exc:
                    rejections.append(exc)
            release.set()
            results = await asyncio.gather(first, *accepted)
            await batcher.stop()
            return results, rejections, batcher.shed_overload

        results, rejections, shed = asyncio.run(run())
        # The first k admitted all completed with real values ...
        expected = [service.predict(r).total for r in total_requests[:3]]
        assert [r.total for r in results] == expected
        # ... and every late-comer was refused, with a Retry-After hint.
        assert len(rejections) == 3 and shed == 3
        assert all(exc.status == 429 for exc in rejections)
        assert all(exc.retry_after >= 1 for exc in rejections)

    def test_poison_isolation_under_concurrent_mixed_load(
        self, mcpat_model, total_requests
    ):
        # A worst-case flush: workload-carrying, workload-free and
        # poison (unsupported-kind) requests all land in one window from
        # concurrent callers.  Every good request must resolve with its
        # direct-call value; only the poison callers see failures.
        service = api.PredictionService(mcpat_model)
        good = [
            api.PredictRequest(r.config, r.events, r.workload)
            for r in total_requests[:4]
        ] + [
            api.PredictRequest(r.config, r.events, None)
            for r in total_requests[4:8]
        ]
        poison = [
            api.PredictRequest(
                r.config, r.events, r.workload, kind="report"
            )
            for r in total_requests[:2]
        ]
        direct = [service.predict(r).total for r in good]

        async def run():
            batcher = MicroBatcher(service, max_wait_ms=50.0)
            await batcher.start()
            try:
                interleaved = [
                    batcher.submit(r)
                    for pair in zip(good[:2], poison, good[2:4])
                    for r in pair
                ] + [batcher.submit(r) for r in good[4:]]
                return await asyncio.gather(
                    *interleaved, return_exceptions=True
                )
            finally:
                await batcher.stop()

        outcomes = asyncio.run(run())
        failures = [o for o in outcomes if isinstance(o, BaseException)]
        totals = [
            o.total for o in outcomes if not isinstance(o, BaseException)
        ]
        assert len(failures) == 2
        assert all(isinstance(f, TypeError) for f in failures)
        assert sorted(totals) == sorted(direct)

    def test_submit_requires_running_batcher(self, mcpat_model):
        batcher = MicroBatcher(api.PredictionService(mcpat_model))

        async def run():
            await batcher.submit(None)

        with pytest.raises(RuntimeError, match="not running"):
            asyncio.run(run())

    def test_knob_validation(self, mcpat_model):
        service = api.PredictionService(mcpat_model)
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(service, max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(service, max_wait_ms=-1.0)


class TestGateway:
    def test_single_requests_bitwise_equal_to_service(
        self, ap_gateway, autopower2, total_requests
    ):
        direct = api.PredictionService(autopower2).submit_many(total_requests)
        for request, expected in zip(total_requests, direct):
            status, body = _http(
                ap_gateway.port, "POST", "/predict",
                wire.encode_request(request),
            )
            assert status == 200
            assert body["total"] == expected.total
            assert body["config"] == expected.config_name
            assert body["workload"] == expected.workload_name
            assert body["kind"] == "total"

    def test_request_list_bitwise_equal_to_service(
        self, ap_gateway, autopower2, total_requests
    ):
        direct = api.PredictionService(autopower2).submit_many(total_requests)
        status, body = _http(
            ap_gateway.port, "POST", "/predict",
            [wire.encode_request(r) for r in total_requests],
        )
        assert status == 200
        assert [item["total"] for item in body] == [r.total for r in direct]

    def test_report_over_the_wire(self, ap_gateway, autopower2, total_requests):
        request = api.PredictRequest(
            total_requests[0].config,
            total_requests[0].events,
            total_requests[0].workload,
            kind="report",
        )
        expected = api.PredictionService(autopower2).predict(request)
        status, body = _http(
            ap_gateway.port, "POST", "/predict", wire.encode_request(request)
        )
        assert status == 200
        assert body["total"] == expected.total
        assert body["report"]["total"] == float(expected.report.total)
        assert set(body["report"]["groups"]) == {
            "clock", "sram", "register", "comb",
        }
        assert len(body["report"]["components"]) == len(
            expected.report.components
        )

    def test_trace_bitwise_over_the_wire(
        self, ap_gateway, autopower2, total_requests
    ):
        request = api.PredictRequest(
            total_requests[0].config,
            total_requests[0].events,
            total_requests[0].workload,
            kind="trace",
            scales=np.linspace(0.8, 1.2, 9),
        )
        expected = api.PredictionService(autopower2).predict(request)
        status, body = _http(
            ap_gateway.port, "POST", "/predict", wire.encode_request(request)
        )
        assert status == 200
        assert body["trace"] == [float(x) for x in expected.trace]

    def test_mixed_workload_presence_in_one_http_batch(
        self, mcpat_gateway, mcpat_model, total_requests
    ):
        request = total_requests[0]
        bare = api.PredictRequest(request.config, request.events, None)
        status, body = _http(
            mcpat_gateway.port, "POST", "/predict",
            [wire.encode_request(request), wire.encode_request(bare)],
        )
        assert status == 200
        service = api.PredictionService(mcpat_model)
        assert body[0]["total"] == service.predict(request).total
        assert body[1]["total"] == service.predict(bare).total
        assert body[1]["workload"] is None

    def test_healthz(self, ap_gateway):
        status, body = _http(ap_gateway.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["model"] == "AutoPower"
        assert body["kinds"] == ["total", "report", "trace"]

    def test_stats_exposes_service_and_gateway_counters(
        self, ap_gateway, total_requests
    ):
        _http(ap_gateway.port, "POST", "/predict",
              [wire.encode_request(r) for r in total_requests[:4]])
        status, body = _http(ap_gateway.port, "GET", "/stats")
        assert status == 200
        service_stats = body["service"]
        gateway_stats = body["gateway"]
        assert service_stats["requests"] >= 4
        assert service_stats["responses"] == service_stats["requests"]
        assert gateway_stats["predict_requests"] >= 4
        assert gateway_stats["queue_depth"] == 0
        assert gateway_stats["flushes"] >= 1
        assert gateway_stats["flushed_requests"] >= 4
        assert gateway_stats["max_flush_size"] >= 1
        assert gateway_stats["mean_flush_size"] >= 1.0
        assert gateway_stats["latency_ms"]["window"] >= 1
        assert gateway_stats["latency_ms"]["p50"] > 0
        assert gateway_stats["latency_ms"]["p95"] >= gateway_stats[
            "latency_ms"
        ]["p50"]

    def test_malformed_json_is_400(self, ap_gateway):
        status, body = _http(
            ap_gateway.port, "POST", "/predict", raw_body="{not json"
        )
        assert status == 400
        assert body["error"]["status"] == 400
        assert "JSON" in body["error"]["message"]

    def test_bad_request_is_400_with_structured_error(
        self, ap_gateway, total_requests
    ):
        obj = wire.encode_request(total_requests[0])
        obj["config"] = "C999"
        status, body = _http(ap_gateway.port, "POST", "/predict", obj)
        assert status == 400
        assert "C999" in body["error"]["message"]

    def test_unsupported_kind_is_422(self, mcpat_gateway, total_requests):
        obj = wire.encode_request(total_requests[0])
        obj["kind"] = "report"
        status, body = _http(mcpat_gateway.port, "POST", "/predict", obj)
        assert status == 422
        assert body["error"]["status"] == 422

    def test_one_bad_request_fails_the_whole_http_batch_before_any_work(
        self, ap_gateway, total_requests
    ):
        # Wire-level validation is all-or-nothing per HTTP request: the
        # caller gets the error and no partial responses.
        good = wire.encode_request(total_requests[0])
        bad = dict(good, config="C999")
        status, body = _http(
            ap_gateway.port, "POST", "/predict", [good, bad]
        )
        assert status == 400
        assert "error" in body

    def test_empty_request_list_is_400(self, ap_gateway):
        status, body = _http(ap_gateway.port, "POST", "/predict", [])
        assert status == 400

    def test_unknown_route_is_404(self, ap_gateway):
        status, body = _http(ap_gateway.port, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, ap_gateway):
        status, _ = _http(ap_gateway.port, "GET", "/predict")
        assert status == 405
        status, _ = _http(ap_gateway.port, "POST", "/healthz", payload={})
        assert status == 405

    def test_errors_are_counted_in_stats(self, ap_gateway):
        _http(ap_gateway.port, "GET", "/definitely-not-a-route")
        status, body = _http(ap_gateway.port, "GET", "/stats")
        assert status == 200
        assert body["gateway"]["errors"].get("404", 0) >= 1

    def test_keep_alive_serves_many_requests_per_connection(
        self, ap_gateway, total_requests
    ):
        conn = http.client.HTTPConnection(
            "127.0.0.1", ap_gateway.port, timeout=30
        )
        for request in total_requests[:3]:
            conn.request(
                "POST", "/predict", body=json.dumps(wire.encode_request(request))
            )
            response = conn.getresponse()
            assert response.status == 200
            json.loads(response.read())
        conn.close()
