"""Backend equivalence: parallel fits and flows match the serial reference.

The acceptance bar for the parallel subsystem: models fitted with
``n_jobs=2`` (thread and process backends) serialize byte-identically to
the serially fitted model, predict within 1e-9 of it (including after a
save/load round-trip through the JSON persistence layer), and parallel
``run_many`` produces the same ground truth as the serial loop — all on
the paper's fig4 two-config setup.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.autopower_minus import AutoPowerMinus
from repro.core.autopower import AutoPower
from repro.core.persistence import load_autopower, save_autopower
from repro.vlsi.flow import VlsiFlow


@pytest.fixture(scope="module")
def train_results(flow, train_configs, workloads):
    """Serially generated flow results of the fig4 two-config split."""
    return flow.run_many(train_configs, workloads)


@pytest.fixture(scope="module")
def serial_model(flow, train_results) -> AutoPower:
    return AutoPower(library=flow.library).fit_results(train_results)


def _predictions(model: AutoPower, flow, configs, workloads) -> np.ndarray:
    return np.array(
        [
            model.predict_total(c, flow.run(c, w).events, w)
            for c in configs
            for w in workloads
        ]
    )


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestFitEquivalence:
    def test_serialized_state_is_byte_identical(
        self, backend, flow, train_results, serial_model, tmp_path
    ):
        parallel_model = AutoPower(library=flow.library).fit_results(
            train_results, n_jobs=2, backend=backend
        )
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / f"{backend}.json"
        save_autopower(serial_model, serial_path)
        save_autopower(parallel_model, parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_predictions_match_serial_fit(
        self, backend, flow, train_results, serial_model, test_configs, workloads
    ):
        parallel_model = AutoPower(library=flow.library).fit_results(
            train_results, n_jobs=2, backend=backend
        )
        configs = test_configs[:3]
        expected = _predictions(serial_model, flow, configs, workloads)
        actual = _predictions(parallel_model, flow, configs, workloads)
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=1e-9)

    def test_save_load_round_trip_predicts_within_1e9(
        self, backend, flow, train_results, serial_model, test_configs, workloads, tmp_path
    ):
        parallel_model = AutoPower(library=flow.library).fit_results(
            train_results, n_jobs=2, backend=backend
        )
        path = tmp_path / "round_trip.json"
        save_autopower(parallel_model, path)
        loaded = load_autopower(path, library=flow.library)
        configs = test_configs[:2]
        expected = _predictions(serial_model, flow, configs, workloads)
        actual = _predictions(loaded, flow, configs, workloads)
        np.testing.assert_allclose(actual, expected, rtol=0.0, atol=1e-9)


def test_fit_with_process_jobs_matches_serial_end_to_end(
    flow, train_configs, workloads, serial_model, test_configs
):
    """The acceptance criterion verbatim: ``fit(..., n_jobs=2)`` (process
    backend) on the fig4 two-config setup predicts within 1e-9 of the
    serial fit — including the parallel ground-truth generation."""
    model = AutoPower(library=flow.library).fit(
        VlsiFlow(library=flow.library), train_configs, workloads,
        n_jobs=2, backend="process",
    )
    configs = test_configs[:3]
    expected = _predictions(serial_model, flow, configs, workloads)
    actual = _predictions(model, flow, configs, workloads)
    np.testing.assert_allclose(actual, expected, rtol=0.0, atol=1e-9)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_run_many_parallel_matches_serial(
    flow, train_configs, workloads, backend
):
    serial = flow.run_many(train_configs, workloads)
    fresh = VlsiFlow(library=flow.library)
    parallel = fresh.run_many(train_configs, workloads, n_jobs=2, backend=backend)
    assert len(parallel) == len(serial)
    for a, b in zip(parallel, serial):
        assert a.config.name == b.config.name
        assert a.workload.name == b.workload.name
        assert a.power.total == b.power.total
        assert a.events.counts == b.events.counts
        assert a.netlist.component("ROB").registers == (
            b.netlist.component("ROB").registers
        )
    # The parallel results landed in the flow's caches: a repeat run is
    # served without touching the executor.
    again = fresh.run_many(train_configs, workloads)
    assert [id(r) for r in again] == [id(r) for r in parallel]


def test_run_many_parallel_preserves_partial_cache(flow, train_configs, workloads):
    """Only the missing (config, workload) pairs are recomputed; cached
    runs survive as the same objects instead of being thrown away."""
    fresh = VlsiFlow(library=flow.library)
    warm = fresh.run(train_configs[0], workloads[0])
    out = fresh.run_many(train_configs, workloads, n_jobs=2, backend="thread")
    assert out[0] is warm
    reference = flow.run_many(train_configs, workloads)
    for a, b in zip(out, reference):
        assert a.power.total == b.power.total


def test_autopower_minus_parallel_fit_matches_serial(flow, train_results, workloads, test_configs):
    serial = AutoPowerMinus().fit_results(train_results)
    threaded = AutoPowerMinus().fit_results(train_results, n_jobs=2, backend="thread")
    config = test_configs[0]
    for w in workloads[:3]:
        events = flow.run(config, w).events
        assert threaded.predict_total(config, events, w) == pytest.approx(
            serial.predict_total(config, events, w), abs=1e-9
        )
