"""Unit tests for the baseline power models."""

import pytest

from repro.arch.components import COMPONENTS
from repro.arch.config import config_by_name
from repro.arch.workloads import workload_by_name
from repro.baselines.autopower_minus import AutoPowerMinus
from repro.baselines.mcpat import McPatAnalytical
from repro.baselines.mcpat_calib import McPatCalib
from repro.baselines.mcpat_calib_component import McPatCalibComponent
from repro.ml.metrics import mape


class TestMcPatAnalytical:
    def test_no_training_needed(self, flow, c8):
        events = flow.run(c8, workload_by_name("qsort")).events
        assert McPatAnalytical().predict_total(c8, events) > 0

    def test_component_sum_equals_total(self, flow, c8):
        events = flow.run(c8, workload_by_name("qsort")).events
        mcpat = McPatAnalytical()
        assert mcpat.predict_total(c8, events) == pytest.approx(
            sum(mcpat.predict(c8, events).values())
        )

    def test_deterministic_distortion(self, flow, c8):
        events = flow.run(c8, workload_by_name("qsort")).events
        assert McPatAnalytical().predict_total(c8, events) == pytest.approx(
            McPatAnalytical().predict_total(c8, events)
        )

    def test_area_grows_with_config(self):
        mcpat = McPatAnalytical()
        for comp in COMPONENTS:
            assert mcpat.area_proxy(config_by_name("C15"), comp.name) >= (
                mcpat.area_proxy(config_by_name("C1"), comp.name)
            )

    def test_activity_increases_power(self, flow, c8):
        mcpat = McPatAnalytical()
        busy = flow.run(c8, workload_by_name("multiply")).events
        idle = flow.run(c8, workload_by_name("spmv")).events
        assert mcpat.predict_total(c8, busy) > mcpat.predict_total(c8, idle)

    def test_is_miscalibrated(self, flow, test_configs, workloads):
        # The analytical model must be visibly wrong — that is its role.
        mcpat = McPatAnalytical()
        true, pred = [], []
        for config in test_configs[:5]:
            for w in workloads:
                res = flow.run(config, w)
                true.append(res.power.total)
                pred.append(mcpat.predict_total(config, res.events))
        assert mape(true, pred) > 15.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            McPatAnalytical(static_share=1.5)
        with pytest.raises(ValueError):
            McPatAnalytical(miscalibration=1.0)


class TestMcPatCalib:
    @pytest.fixture(scope="class")
    def calib(self, flow, train_configs, workloads):
        return McPatCalib().fit(flow, train_configs, workloads)

    def test_positive_predictions(self, calib, flow, c8):
        events = flow.run(c8, workload_by_name("qsort")).events
        assert calib.predict_total(c8, events) > 0

    def test_much_better_than_raw_mcpat(
        self, calib, flow, test_configs, workloads
    ):
        mcpat = McPatAnalytical()
        true, cal, raw = [], [], []
        for config in test_configs:
            for w in workloads:
                res = flow.run(config, w)
                true.append(res.power.total)
                cal.append(calib.predict_total(config, res.events))
                raw.append(mcpat.predict_total(config, res.events))
        assert mape(true, cal) < 0.7 * mape(true, raw)

    def test_requires_fit(self, flow, c8):
        with pytest.raises(RuntimeError):
            McPatCalib().predict_total(c8, flow.run(c8, workload_by_name("qsort")).events)

    def test_feature_names_align(self, calib, flow, c8):
        events = flow.run(c8, workload_by_name("qsort")).events
        assert len(McPatCalib.feature_names()) == calib._features(c8, events).size


class TestMcPatCalibComponent:
    @pytest.fixture(scope="class")
    def calib_comp(self, flow, train_configs, workloads):
        return McPatCalibComponent().fit(flow, train_configs, workloads)

    def test_total_is_component_sum(self, calib_comp, flow, c8):
        events = flow.run(c8, workload_by_name("qsort")).events
        total = calib_comp.predict_total(c8, events)
        parts = sum(
            calib_comp.predict_component(c.name, c8, events) for c in COMPONENTS
        )
        assert total == pytest.approx(parts)

    def test_requires_fit(self, flow, c8):
        with pytest.raises(RuntimeError):
            McPatCalibComponent().predict_component(
                "ROB", c8, flow.run(c8, workload_by_name("qsort")).events
            )


class TestAutoPowerMinus:
    @pytest.fixture(scope="class")
    def minus(self, flow, train_configs, workloads):
        return AutoPowerMinus().fit(flow, train_configs, workloads)

    def test_groups_sum_to_total(self, minus, flow, c8):
        w = workload_by_name("qsort")
        events = flow.run(c8, w).events
        total = minus.predict_total(c8, events, w)
        parts = sum(
            minus.predict_group(c8, events, w, g)
            for g in ("clock", "sram", "register", "comb")
        )
        assert total == pytest.approx(parts)

    def test_logic_group_alias(self, minus, flow, c8):
        w = workload_by_name("qsort")
        events = flow.run(c8, w).events
        logic = minus.predict_group(c8, events, w, "logic")
        assert logic == pytest.approx(
            minus.predict_group(c8, events, w, "register")
            + minus.predict_group(c8, events, w, "comb")
        )

    def test_requires_fit(self, flow, c8):
        w = workload_by_name("qsort")
        with pytest.raises(RuntimeError):
            AutoPowerMinus().predict_component_group(
                "ROB", "clock", c8, flow.run(c8, w).events, w
            )
