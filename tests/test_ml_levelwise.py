"""Level-wise engine suite: scalar-reference properties, kernel parity.

Complements ``tests/test_ml_engine_equivalence.py`` with the cases the
level-wise rewrite is most likely to get wrong:

* randomized *small-n* datasets (n in 2..12 — the few-shot regime), value
  ties, constant features, and non-unit hessians, all pitted against a
  deliberately naive per-node scalar reference,
* the compiled kernel against the pure-numpy engine (byte-identical
  serialized models, identical predictions),
* serialization round-trips of level-wise-fitted models through the
  legacy nested format,
* the no-per-node-argsort invariant via ``SORT_COUNTERS``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml._kernel import get_kernel
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.serialize import gbm_from_dict, gbm_to_dict, tree_from_dict
from repro.ml.tree import SORT_COUNTERS, RegressionTree

GAIN_EPS = 1e-12


# -- naive scalar reference (per-node loops, explicit hessians) -------------
#
# Tie discipline: the engine orders tied values by original row index (the
# stable root presort, preserved by partitioning) and chains child G/H sums
# off the winning candidate's cumulative values.  The reference does the
# same — with `idx` kept sorted, a stable value sort is exactly
# (value, original index) order — so mathematically tied candidates score
# bitwise equal in both implementations and resolve to the same split.
def _reference_split(X, grad, hess, idx, gsum, hsum, lam, gamma, mcw):
    parent = gsum * gsum / (hsum + lam)
    best_score = -np.inf
    best = None
    for feature in range(X.shape[1]):
        values = X[idx, feature]
        order = np.argsort(values, kind="stable")
        sv = values[order]
        gl = np.cumsum(grad[idx][order])
        hl = np.cumsum(hess[idx][order])
        for i in range(idx.size - 1):
            if sv[i + 1] == sv[i]:
                continue
            hl_i = float(hl[i])
            hr_i = hsum - hl_i
            if hl_i < mcw or hr_i < mcw:
                continue
            gl_i = float(gl[i])
            gr_i = gsum - gl_i
            score = gl_i * gl_i / (hl_i + lam) + gr_i * gr_i / (hr_i + lam)
            if score > best_score:
                best_score = score
                best = (feature, i, order, float(gl[i]), float(hl[i]))
    if best is None:
        return None
    gain = 0.5 * (best_score - parent) - gamma
    if not gain > GAIN_EPS:
        return None
    feature, pos, order, gl_win, hl_win = best
    sv = X[idx, feature][order]
    threshold = 0.5 * (sv[pos] + sv[pos + 1])
    left = np.sort(idx[order[: pos + 1]])
    right = np.sort(idx[order[pos + 1 :]])
    return feature, float(threshold), left, right, gl_win, hl_win


def _reference_build(X, grad, hess, idx, depth, p, gsum=None, hsum=None):
    if gsum is None:  # root: sequential sums, like the engine
        gsum = float(np.cumsum(grad[idx])[-1])
        hsum = float(np.cumsum(hess[idx])[-1])
    node = {"value": -gsum / (hsum + p["lam"]), "n": int(idx.size)}
    if depth < p["max_depth"] and idx.size >= p["mss"]:
        best = _reference_split(
            X, grad, hess, idx, gsum, hsum, p["lam"], p["gamma"], p["mcw"]
        )
        if best is not None:
            feature, threshold, li, ri, gl, hl = best
            node["feature"] = feature
            node["threshold"] = threshold
            node["left"] = _reference_build(X, grad, hess, li, depth + 1, p, gl, hl)
            node["right"] = _reference_build(
                X, grad, hess, ri, depth + 1, p, gsum - gl, hsum - hl
            )
    return node


def _assert_structure(ref, node):
    assert node.value == pytest.approx(ref["value"], rel=1e-12, abs=1e-12)
    assert node.n_samples == ref["n"]
    if "feature" in ref:
        assert not node.is_leaf, "engine made a leaf where reference split"
        assert node.feature == ref["feature"]
        assert node.threshold == pytest.approx(ref["threshold"], rel=1e-12)
        _assert_structure(ref["left"], node.left)
        _assert_structure(ref["right"], node.right)
    else:
        assert node.is_leaf, "engine split where reference made a leaf"


def _small_cases():
    """Small-n datasets exercising every awkward frontier shape."""
    cases = []
    for seed in range(10):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 13))  # n in 2..12: the few-shot regime
        f = int(rng.integers(1, 6))
        X = rng.normal(size=(n, f))
        if seed % 3 == 0 and f > 1:
            X[:, 0] = rng.integers(0, 3, size=n)  # heavy ties
        if seed % 4 == 0:
            X[:, -1] = 1.5  # constant feature
        y = rng.normal(size=n)
        cases.append((X, y))
    # all-constant matrix: no split anywhere
    cases.append((np.ones((6, 3)), np.arange(6.0)))
    # duplicated rows: every candidate tied
    rng = np.random.default_rng(42)
    base = rng.normal(size=(3, 4))
    cases.append((np.repeat(base, 3, axis=0), rng.normal(size=9)))
    return cases


class TestSmallNReference:
    @pytest.mark.parametrize("case", range(12))
    def test_exact_structure_small_n(self, case):
        X, y = _small_cases()[case]
        kw = dict(max_depth=3, reg_lambda=0.4, min_child_weight=1.0)
        tree = RegressionTree(**kw).fit(X, y)
        p = {"max_depth": 3, "mss": 2, "mcw": 1.0, "lam": 0.4, "gamma": 0.0}
        grad = -np.asarray(y, dtype=float)
        hess = np.ones_like(grad)
        ref = _reference_build(
            np.asarray(X, dtype=float), grad, hess, np.arange(len(y)), 0, p
        )
        _assert_structure(ref, tree.root_)

    @pytest.mark.parametrize("case", range(12))
    def test_nonunit_hessians_match_reference(self, case):
        X, y = _small_cases()[case]
        rng = np.random.default_rng(100 + case)
        hess = rng.uniform(0.5, 3.0, size=len(y))
        grad = -np.asarray(y, dtype=float) * hess
        kw = dict(max_depth=3, reg_lambda=0.7, min_child_weight=1.2, gamma=0.005)
        tree = RegressionTree(**kw).fit_gradients(X, grad, hess)
        p = {"max_depth": 3, "mss": 2, "mcw": 1.2, "lam": 0.7, "gamma": 0.005}
        ref = _reference_build(
            np.asarray(X, dtype=float), grad, hess, np.arange(len(y)), 0, p
        )
        _assert_structure(ref, tree.root_)

    @pytest.mark.parametrize("case", range(12))
    def test_hist_small_n_matches_exact(self, case):
        # With n <= 12 distinct values per feature, quantile bin edges are
        # the exact midpoints, so hist must induce the same partitions.
        # Mathematically tied splits may resolve to a different feature
        # (the two engines accumulate G in different orders), so compare
        # the partition geometry and predictions, not feature ids.
        X, y = _small_cases()[case]
        exact = RegressionTree(max_depth=3, tree_method="exact").fit(X, y)
        hist = RegressionTree(max_depth=3, tree_method="hist", max_bin=64).fit(X, y)
        fe, fh = exact.ensure_flat(), hist.ensure_flat()
        assert fe.n_nodes == fh.n_nodes
        assert fe.depth == fh.depth
        assert sorted(fe.n_samples.tolist()) == sorted(fh.n_samples.tolist())
        assert np.allclose(exact.predict(X), hist.predict(X), rtol=1e-9, atol=1e-12)

    def test_fractional_min_child_weight(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(10, 3))
        y = rng.normal(size=10)
        kw = dict(max_depth=4, min_child_weight=2.5, reg_lambda=0.2)
        tree = RegressionTree(**kw).fit(X, y)
        p = {"max_depth": 4, "mss": 2, "mcw": 2.5, "lam": 0.2, "gamma": 0.0}
        grad = -y.astype(float)
        ref = _reference_build(X, grad, np.ones(10), np.arange(10), 0, p)
        _assert_structure(ref, tree.root_)


class TestKernelParity:
    """Compiled kernel vs pure-numpy engine (skipped when not compiled)."""

    pytestmark = pytest.mark.skipif(
        get_kernel() is None, reason="compiled kernel unavailable"
    )

    def _pair(self, **kw):
        rng = np.random.default_rng(kw.pop("seed", 0))
        n = kw.pop("n", 12)
        f = kw.pop("f", 8)
        X = rng.uniform(0.0, 4.0, size=(n, f))
        y = 5.0 * X[:, 0] - X[:, 1] + rng.normal(scale=0.3, size=n)
        with_kernel = GradientBoostingRegressor(**kw).fit(X, y)
        import repro.ml._kernel as kernel_mod

        saved, saved_tried = kernel_mod._kernel, kernel_mod._kernel_tried
        kernel_mod._kernel, kernel_mod._kernel_tried = None, True
        try:
            without = GradientBoostingRegressor(**kw).fit(X, y)
        finally:
            kernel_mod._kernel, kernel_mod._kernel_tried = saved, saved_tried
        return with_kernel, without, X

    @pytest.mark.parametrize("seed", range(5))
    def test_serialized_models_byte_identical(self, seed):
        import json

        a, b, X = self._pair(
            seed=seed, n_estimators=60, learning_rate=0.1, max_depth=3
        )
        assert json.dumps(gbm_to_dict(a)) == json.dumps(gbm_to_dict(b))
        assert np.array_equal(a.predict(X), b.predict(X))

    @pytest.mark.parametrize("seed", range(4))
    def test_early_stopping_parity(self, seed):
        a, b, X = self._pair(
            seed=seed,
            n=20,
            n_estimators=200,
            learning_rate=0.3,
            max_depth=2,
            early_stopping_rounds=5,
        )
        assert a.n_trees_ == b.n_trees_
        # Both paths accumulate the loss sequentially, so the whole loss
        # trajectory — and thus every stopping decision — is bitwise equal.
        assert a.train_losses_ == b.train_losses_

    def test_early_stopping_zero_rounds_parity(self):
        # Regression: 0 means stop-at-first-plateau (numpy semantics), not
        # disabled — the kernel uses a negative sentinel for None instead.
        a, b, _ = self._pair(
            seed=7, n=10, f=2, n_estimators=400, early_stopping_rounds=0
        )
        assert a.n_trees_ == b.n_trees_ < 400
        assert a.train_losses_ == b.train_losses_

    def test_deep_trees_and_mcw(self):
        a, b, X = self._pair(
            n=40, n_estimators=30, max_depth=6, min_child_weight=3.0, gamma=0.01
        )
        assert np.array_equal(a.predict(X), b.predict(X))
        for (ta, _), (tb, _) in zip(a.trees_, b.trees_):
            fa, fb = ta.ensure_flat(), tb.ensure_flat()
            for field in ("feature", "threshold", "left", "right", "value", "n_samples"):
                assert np.array_equal(getattr(fa, field), getattr(fb, field)), field

    def test_kernel_ensemble_matches_lazy_assembly(self):
        a, _, X = self._pair(n_estimators=40, max_depth=3)
        from repro.ml.gbm import _FlatEnsemble

        lazy = _FlatEnsemble(a.trees_)
        fast = a._flat_ensemble()
        assert np.array_equal(lazy.feature, fast.feature)
        assert np.array_equal(lazy.threshold, fast.threshold)
        assert np.array_equal(lazy.left, fast.left)
        assert np.array_equal(lazy.right, fast.right)
        assert np.array_equal(lazy.value, fast.value)
        assert np.array_equal(lazy.roots, fast.roots)


class TestSerializationCompat:
    def test_levelwise_tree_loads_via_legacy_nested_format(self):
        # A level-wise-fitted tree exported through the legacy nested
        # ``root`` schema must load into the same predictor.
        rng = np.random.default_rng(3)
        X = rng.normal(size=(30, 4))
        y = np.sin(X[:, 0]) + rng.normal(scale=0.1, size=30)
        tree = RegressionTree(max_depth=3).fit(X, y)

        def nest(node):
            d = {"value": node.value, "n_samples": node.n_samples}
            if not node.is_leaf:
                d["feature"] = node.feature
                d["threshold"] = node.threshold
                d["left"] = nest(node.left)
                d["right"] = nest(node.right)
            return d

        legacy = {
            "kind": "tree",
            "n_features": tree.n_features_,
            "max_depth": tree.max_depth,
            "reg_lambda": tree.reg_lambda,
            "root": nest(tree.root_),
        }
        clone = tree_from_dict(legacy)
        assert np.allclose(tree.predict(X), clone.predict(X), rtol=0, atol=1e-12)

    def test_gbm_round_trip_after_kernel_or_numpy_fit(self):
        rng = np.random.default_rng(9)
        X = rng.uniform(size=(15, 6))
        y = rng.uniform(10, 20, size=15)
        model = GradientBoostingRegressor(n_estimators=25, max_depth=3).fit(X, y)
        clone = gbm_from_dict(gbm_to_dict(model))
        assert np.array_equal(model.predict(X), clone.predict(X))

    def test_hist_dtype_round_trips_only_when_nondefault(self):
        rng = np.random.default_rng(10)
        X = rng.uniform(size=(40, 4))
        y = rng.normal(size=40)
        m64 = GradientBoostingRegressor(n_estimators=5, tree_method="hist").fit(X, y)
        assert "hist_dtype" not in gbm_to_dict(m64)["params"]  # wire unchanged
        m32 = GradientBoostingRegressor(
            n_estimators=5, tree_method="hist", hist_dtype="float32"
        ).fit(X, y)
        state = gbm_to_dict(m32)
        assert state["params"]["hist_dtype"] == "float32"
        clone = gbm_from_dict(state)
        assert clone.hist_dtype == "float32"
        assert np.array_equal(m32.predict(X), clone.predict(X))


class TestHistFloat32:
    def test_hist32_close_to_hist64(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(300, 6))
        y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2]
        kw = dict(n_estimators=60, max_depth=4, tree_method="hist", max_bin=64)
        m64 = GradientBoostingRegressor(**kw).fit(X, y)
        m32 = GradientBoostingRegressor(hist_dtype="float32", **kw).fit(X, y)
        r64 = float(np.sqrt(np.mean((m64.predict(X) - y) ** 2)))
        r32 = float(np.sqrt(np.mean((m32.predict(X) - y) ** 2)))
        assert r32 < 1.5 * r64 + 1e-9

    def test_hist32_deterministic(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(size=(80, 5))
        y = rng.normal(size=80)
        kw = dict(n_estimators=10, tree_method="hist", hist_dtype="float32")
        a = GradientBoostingRegressor(**kw).fit(X, y)
        b = GradientBoostingRegressor(**kw).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(hist_dtype="float16")
        with pytest.raises(ValueError):
            RegressionTree(hist_dtype="half")


class TestNoPerNodeSorts:
    def test_numpy_exact_fit_sorts_once_per_workspace(self):
        # The level-wise exact engine presorts each feature exactly once
        # per fit (the workspace build); below the root every partition is
        # a stable position-cut split.  ``node_argsorts`` has no increment
        # site at all — pinned here so a regression must touch the counter.
        import repro.ml._kernel as kernel_mod

        rng = np.random.default_rng(0)
        X = rng.uniform(size=(12, 10))
        y = rng.normal(size=12)
        saved, saved_tried = kernel_mod._kernel, kernel_mod._kernel_tried
        kernel_mod._kernel, kernel_mod._kernel_tried = None, True
        try:
            before = dict(SORT_COUNTERS)
            GradientBoostingRegressor(n_estimators=50, max_depth=3).fit(X, y)
            after = dict(SORT_COUNTERS)
        finally:
            kernel_mod._kernel, kernel_mod._kernel_tried = saved, saved_tried
        assert after["workspace_builds"] - before["workspace_builds"] == 1
        assert after["node_argsorts"] - before["node_argsorts"] == 0

    def test_kernel_fit_sorts_once_per_workspace(self):
        if get_kernel() is None:
            pytest.skip("compiled kernel unavailable")
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(12, 10))
        y = rng.normal(size=12)
        before = dict(SORT_COUNTERS)
        GradientBoostingRegressor(n_estimators=50, max_depth=3).fit(X, y)
        after = dict(SORT_COUNTERS)
        assert after["workspace_builds"] - before["workspace_builds"] == 1
        assert after["node_argsorts"] - before["node_argsorts"] == 0
