"""Unit tests for repro.vlsi: macro mapping and the end-to-end flow."""

import pytest

from repro.arch.config import config_by_name
from repro.arch.workloads import workload_by_name
from repro.library.sram_compiler import SramCompiler
from repro.vlsi.flow import VlsiFlow
from repro.vlsi.macro_mapping import MacroMapper


@pytest.fixture(scope="module")
def mapper():
    return MacroMapper(SramCompiler())


class TestMacroMapper:
    def test_exact_legal_shape_single_macro(self, mapper):
        mapping = mapper.map(64, 256)
        assert mapping.n_macros == 1
        assert mapping.macro.width == 64
        assert mapping.macro.depth == 256

    def test_width_rounds_up_to_legal(self, mapper):
        mapping = mapper.map(120, 8)  # the C1 meta block
        assert mapping.macro.width == 128
        assert mapping.macro.depth == 16
        assert (mapping.n_row, mapping.n_col) == (1, 1)

    def test_wide_block_tiles_rows(self, mapper):
        mapping = mapper.map(240, 40)  # the C15 meta block
        assert mapping.macro.width == 128
        assert mapping.n_row == 2
        assert mapping.n_col == 1

    def test_deep_block_stacks_columns(self, mapper):
        mapping = mapper.map(64, 3000)
        assert mapping.macro.depth == 1024
        assert mapping.n_col == 3

    def test_macro_bits_cover_block_bits(self, mapper):
        for width, depth in ((120, 8), (240, 40), (22, 64), (64, 256), (48, 32)):
            mapping = mapper.map(width, depth)
            assert mapping.bits >= width * depth

    def test_invalid_shape_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.map(0, 8)

    def test_deterministic_rule(self, mapper):
        assert mapper.map(30, 100) == mapper.map(30, 100)


class TestVlsiFlow:
    def test_run_caches(self, flow):
        c1 = config_by_name("C1")
        w = workload_by_name("towers")
        assert flow.run(c1, w) is flow.run(c1, w)

    def test_design_and_netlist_cached(self, flow):
        c1 = config_by_name("C1")
        assert flow.design(c1) is flow.design(c1)
        assert flow.netlist(c1) is flow.netlist(c1)

    def test_result_is_consistent(self, flow):
        res = flow.run(config_by_name("C5"), workload_by_name("median"))
        assert res.power.config_name == "C5"
        assert res.power.workload_name == "median"
        assert res.events.cycles > 0
        assert res.true.cycles > 0

    def test_run_many_cross_product(self, flow):
        configs = [config_by_name("C1"), config_by_name("C2")]
        workloads = [workload_by_name("towers"), workload_by_name("median")]
        results = flow.run_many(configs, workloads)
        assert len(results) == 4

    def test_power_at_scale_monotone(self, flow):
        c2 = config_by_name("C2")
        gemm = workload_by_name("gemm")
        low = flow.power_at_scale(c2, gemm, 0.6).total
        mid = flow.power_at_scale(c2, gemm, 1.0).total
        high = flow.power_at_scale(c2, gemm, 1.4).total
        assert low < mid < high

    def test_events_differ_from_true(self, flow):
        # The perf simulator must not be a perfect oracle.
        res = flow.run(config_by_name("C5"), workload_by_name("qsort"))
        diff = abs(res.events.counts["dcache_misses"] - res.true.events["dcache_misses"])
        assert diff > 0

    def test_fresh_flow_reproduces_results(self):
        a = VlsiFlow().run(config_by_name("C4"), workload_by_name("vvadd"))
        b = VlsiFlow().run(config_by_name("C4"), workload_by_name("vvadd"))
        assert a.power.total == pytest.approx(b.power.total)
        assert a.events.counts == b.events.counts
