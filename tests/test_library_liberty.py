"""Tests for the Liberty-style library exporter."""


from repro.library.liberty import export_liberty, liberty_text
from repro.library.stdcell import default_library


class TestLibertyExport:
    def test_contains_all_cells(self):
        lib = default_library()
        text = liberty_text(lib)
        assert f"library ({lib.name})" in text
        assert "cell (dff)" in text
        assert "cell (icg)" in text
        for cell in lib.comb_cells:
            assert f"cell ({cell.name})" in text

    def test_contains_all_macros(self):
        lib = default_library()
        text = liberty_text(lib)
        for macro in lib.sram.all_macros():
            assert f"cell ({macro.name})" in text

    def test_energy_values_round_trip(self):
        lib = default_library()
        text = liberty_text(lib)
        assert f"clock_pin_energy : {lib.register_clock_pin_energy_pj:.6g};" in text

    def test_braces_balanced(self):
        text = liberty_text(default_library())
        assert text.count("{") == text.count("}")

    def test_export_writes_file(self, tmp_path):
        out = export_liberty(default_library(), tmp_path / "synth40.lib")
        assert out.exists()
        assert out.read_text().startswith("library (synth40)")

    def test_deterministic(self):
        assert liberty_text(default_library()) == liberty_text(default_library())
