"""Unit tests for repro.core.sram (SRAM power model, Eq. 9-10)."""

import pytest

from repro.arch.config import BOOM_CONFIGS, config_by_name
from repro.arch.workloads import workload_by_name
from repro.core.sram import SramPowerModel
from repro.ml.metrics import mape


class TestHardwareModel:
    def test_meta_laws_match_table1(self, autopower2):
        laws = autopower2.sram_model.laws("meta")
        assert set(laws["capacity"].params) == {"FetchWidth", "DecodeWidth"}
        assert laws["capacity"].coefficient == pytest.approx(240.0)
        assert laws["throughput"].params == ("FetchWidth",)
        assert laws["throughput"].coefficient == pytest.approx(30.0)
        assert laws["width"].coefficient == pytest.approx(30.0)

    def test_all_block_shapes_exact(self, autopower2, flow):
        # Paper Sec. III-B4: "nearly 0 MAPE" on block information.
        model = autopower2.sram_model
        for position in model.position_names:
            component = model._positions[position].component
            for config in BOOM_CONFIGS:
                true = flow.design(config).component(component).position(position).block
                pred = model.predict_block(position, config)
                assert (pred.width, pred.depth, pred.count) == (
                    true.width,
                    true.depth,
                    true.count,
                ), (position, config.name)

    def test_fourteen_positions_discovered(self, autopower2):
        assert len(autopower2.sram_model.position_names) == 14

    def test_unknown_position_rejected(self, autopower2):
        with pytest.raises(KeyError):
            autopower2.sram_model.predict_block("no_such_table", config_by_name("C1"))


class TestActivityModel:
    def test_rates_nonnegative(self, autopower2, flow, test_configs):
        model = autopower2.sram_model
        config = test_configs[0]
        w = workload_by_name("qsort")
        events = flow.run(config, w).events
        for position in model.position_names:
            read, write = model.predict_block_activity(position, config, events, w)
            assert read >= 0.0
            assert write >= 0.0

    def test_activity_tracks_golden(self, autopower2, flow, test_configs, workloads):
        model = autopower2.sram_model
        true, pred = [], []
        for config in test_configs[:4]:
            for w in workloads:
                res = flow.run(config, w)
                act = res.activity.component("ICacheDataArray").positions["icache_data"]
                read, _ = model.predict_block_activity(
                    "icache_data", config, res.events, w
                )
                true.append(act.read_per_block_cycle)
                pred.append(read)
        assert mape(true, pred) < 20.0


class TestPowerPrediction:
    def test_constant_calibrated_close_to_truth(self, autopower2, flow):
        # C should land near the real per-macro static power (leak + pins).
        compiler = flow.library.sram
        macros = compiler.all_macros()
        static = [m.leakage_mw + m.pin_toggle_mw for m in macros]
        c_hat = autopower2.sram_model.c_constant_mw
        assert min(static) * 0.5 <= c_hat <= max(static) * 1.5

    def test_component_power_positive(self, autopower2, flow, c8):
        w = workload_by_name("median")
        events = flow.run(c8, w).events
        assert autopower2.sram_model.predict_component("IFU", c8, events, w) > 0

    def test_non_sram_component_is_zero(self, autopower2, flow, c8):
        w = workload_by_name("median")
        events = flow.run(c8, w).events
        assert autopower2.sram_model.predict_component("RNU", c8, events, w) == 0.0

    def test_group_accuracy_within_paper_band(
        self, autopower2, flow, test_configs, workloads
    ):
        # Paper: SRAM MAPE 7.60 % with 2 training configs.
        true, pred = [], []
        for config in test_configs:
            for w in workloads:
                res = flow.run(config, w)
                true.append(res.power.group_total("sram"))
                pred.append(
                    sum(autopower2.sram_model.predict(config, res.events, w).values())
                )
        assert mape(true, pred) < 10.0

    def test_requires_fit(self, flow):
        model = SramPowerModel(flow.library)
        with pytest.raises(RuntimeError):
            model.predict(config_by_name("C1"), None, None)

    def test_empty_results_rejected(self, flow):
        with pytest.raises(ValueError):
            SramPowerModel(flow.library).fit([])
