"""Unit tests for repro.ml.linear (ridge regression)."""

import numpy as np
import pytest

from repro.ml.linear import RidgeRegression


def _linear_data(n=40, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 3))
    w = np.array([2.0, -1.5, 0.5])
    y = X @ w + 4.0 + noise * rng.normal(size=n)
    return X, y, w


class TestFit:
    def test_recovers_exact_linear_relation(self):
        X, y, w = _linear_data()
        model = RidgeRegression(alpha=1e-10).fit(X, y)
        assert np.allclose(model.coef_, w, atol=1e-6)
        assert model.intercept_ == pytest.approx(4.0, abs=1e-6)

    def test_predict_matches_training_targets(self):
        X, y, _ = _linear_data()
        model = RidgeRegression(alpha=1e-10).fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-6)

    def test_two_samples_interpolate(self):
        # The few-shot regime: 2 samples, 2 features.
        X = np.array([[1.0, 16.0], [5.0, 140.0]])
        y = np.array([381.0, 1875.0])
        model = RidgeRegression(alpha=1e-6).fit(X, y)
        assert np.allclose(model.predict(X), y, rtol=1e-3)

    def test_underdetermined_does_not_blow_up(self):
        X = np.array([[1.0, 2.0, 3.0, 4.0], [2.0, 3.0, 5.0, 9.0]])
        y = np.array([1.0, 2.0])
        model = RidgeRegression(alpha=1e-3).fit(X, y)
        pred = model.predict(np.array([[1.5, 2.5, 4.0, 6.5]]))
        assert np.isfinite(pred).all()
        assert 0.0 < pred[0] < 3.0

    def test_regularization_shrinks_coefficients(self):
        X, y, _ = _linear_data(noise=1.0)
        small = RidgeRegression(alpha=1e-6).fit(X, y)
        large = RidgeRegression(alpha=1e4).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_huge_alpha_predicts_mean(self):
        X, y, _ = _linear_data()
        model = RidgeRegression(alpha=1e12).fit(X, y)
        assert np.allclose(model.predict(X), y.mean(), rtol=1e-3)

    def test_constant_feature_is_harmless(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        y = 3.0 * np.arange(10.0) + 1.0
        model = RidgeRegression(alpha=1e-9).fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-6)

    def test_no_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = RidgeRegression(alpha=1e-10, fit_intercept=False, normalize=False)
        model.fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0, rel=1e-6)


class TestValidation:
    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RidgeRegression(alpha=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="before fit"):
            RidgeRegression().predict([[1.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.ones((3, 2)), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.empty((0, 2)), np.empty(0))

    def test_predict_feature_mismatch(self):
        model = RidgeRegression().fit(np.ones((3, 2)), np.ones(3))
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((1, 3)))


class TestNonnegative:
    def test_clamps_predictions(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1.0, 0.5, 0.0])
        model = RidgeRegression(alpha=1e-9, nonnegative=True).fit(X, y)
        assert model.predict(np.array([[10.0]]))[0] == 0.0

    def test_fit_predict_convenience(self):
        X, y, _ = _linear_data(n=10)
        model = RidgeRegression(alpha=1e-9)
        assert np.allclose(model.fit_predict(X, y), y, atol=1e-5)
