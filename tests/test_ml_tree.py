"""Unit tests for repro.ml.tree (regression tree)."""

import numpy as np
import pytest

from repro.ml.tree import RegressionTree


def _step_data():
    X = np.arange(20, dtype=float).reshape(-1, 1)
    y = np.where(X.ravel() < 10, 1.0, 5.0)
    return X, y


class TestFit:
    def test_learns_step_function(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=1, reg_lambda=0.0).fit(X, y)
        pred = tree.predict(X)
        assert np.allclose(pred, y, atol=1e-9)

    def test_split_threshold_between_values(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=1, reg_lambda=0.0).fit(X, y)
        assert tree.root_.threshold == pytest.approx(9.5)

    def test_depth_zero_is_mean_leaf(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=0, reg_lambda=0.0).fit(X, y)
        assert tree.root_.is_leaf
        assert tree.predict(X)[0] == pytest.approx(y.mean())

    def test_reg_lambda_shrinks_leaf_values(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        plain = RegressionTree(max_depth=1, reg_lambda=0.0).fit(X, y)
        shrunk = RegressionTree(max_depth=1, reg_lambda=5.0).fit(X, y)
        assert max(abs(v) for v in shrunk.predict(X)) < max(
            abs(v) for v in plain.predict(X)
        )

    def test_min_child_weight_blocks_small_splits(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=3, min_child_weight=50.0).fit(X, y)
        assert tree.root_.is_leaf

    def test_gamma_blocks_weak_splits(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 2))
        y = rng.normal(size=30) * 0.01  # almost no structure
        tree = RegressionTree(max_depth=3, gamma=10.0).fit(X, y)
        assert tree.root_.is_leaf

    def test_max_depth_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 3))
        y = np.sin(X[:, 0]) + X[:, 1] ** 2
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree.depth_ <= 2

    def test_constant_target_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        tree = RegressionTree(max_depth=3, reg_lambda=0.0).fit(X, np.full(10, 7.0))
        assert tree.root_.is_leaf
        assert tree.predict(X)[0] == pytest.approx(7.0)

    def test_duplicate_feature_values_not_split(self):
        X = np.ones((10, 1))
        y = np.arange(10.0)
        tree = RegressionTree(max_depth=3).fit(X, y)
        assert tree.root_.is_leaf

    def test_predictions_within_target_range(self):
        # Trees cannot extrapolate — the paper's few-shot failure mode.
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(50, 2))
        y = rng.uniform(10, 20, size=50)
        tree = RegressionTree(max_depth=4, reg_lambda=0.0).fit(X, y)
        pred = tree.predict(rng.uniform(-5, 5, size=(100, 2)))
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestValidation:
    def test_bad_depth(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=-1)

    def test_bad_min_samples(self):
        with pytest.raises(ValueError):
            RegressionTree(min_samples_split=1)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict([[1.0]])

    def test_feature_count_mismatch(self):
        tree = RegressionTree().fit(np.ones((4, 2)), np.arange(4.0))
        with pytest.raises(ValueError):
            tree.predict(np.ones((1, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit_gradients(np.empty((0, 1)), np.empty(0), np.empty(0))

    def test_count_leaves(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=1, reg_lambda=0.0).fit(X, y)
        assert tree.root_.count_leaves() == 2
