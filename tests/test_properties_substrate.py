"""Property-based tests of the substrate: any valid workload profile must
flow through execution, activity extraction and power analysis without
violating physical invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import config_by_name
from repro.arch.workloads import Workload
from repro.library.stdcell import default_library
from repro.rtl.generator import RtlGenerator
from repro.power.analysis import PowerAnalyzer
from repro.sim.activity import ActivitySimulator
from repro.sim.uarch import execute
from repro.synthesis.synthesizer import Synthesizer

_SMALL = dict(max_examples=25, deadline=None)


@st.composite
def workloads(draw):
    """Random but valid workload profiles."""
    weights = [draw(st.floats(min_value=0.01, max_value=1.0)) for _ in range(6)]
    total = sum(weights)
    mix = [w / total for w in weights]
    # Re-normalize exactly (floating error must not trip validation).
    mix[0] += 1.0 - sum(mix)
    return Workload(
        name="hypo",
        instructions=draw(st.integers(min_value=1_000, max_value=500_000)),
        frac_int_alu=mix[0],
        frac_int_mul=mix[1],
        frac_fp=mix[2],
        frac_load=mix[3],
        frac_store=mix[4],
        frac_branch=mix[5],
        branch_entropy=draw(st.floats(min_value=0.0, max_value=1.0)),
        icache_footprint=draw(st.integers(min_value=1_024, max_value=1 << 20)),
        dcache_footprint=draw(st.integers(min_value=1_024, max_value=1 << 22)),
        locality=draw(st.floats(min_value=0.0, max_value=1.0)),
        ilp=draw(st.floats(min_value=1.0, max_value=6.0)),
    )


class TestExecutionInvariants:
    @given(workloads())
    @settings(**_SMALL)
    def test_events_physical(self, workload):
        config = config_by_name("C8")
        res = execute(config, workload)
        assert res.cycles > 0
        assert 0 < res.ipc <= config["DecodeWidth"]
        for name, value in res.events.items():
            assert value >= 0.0, name
        assert res.events["icache_misses"] <= res.events["icache_accesses"] + 1e-9
        assert res.events["dcache_misses"] <= res.events["dcache_accesses"] + 1e-9

    @given(workloads())
    @settings(**_SMALL)
    def test_rates_bounded(self, workload):
        config = config_by_name("C3")
        res = execute(config, workload)
        assert res.events["decode_uops"] <= config["DecodeWidth"] * res.cycles
        assert res.events["fetch_packets"] <= res.cycles


class TestPipelineInvariants:
    @given(workloads())
    @settings(**_SMALL)
    def test_power_positive_for_any_workload(self, workload):
        config = config_by_name("C5")
        library = default_library()
        design = RtlGenerator().generate(config)
        netlist = Synthesizer(library).synthesize(design)
        activity = ActivitySimulator().simulate(design, config, workload)
        report = PowerAnalyzer(library).analyze(netlist, activity)
        assert report.total > 0
        for comp in report.components:
            assert comp.total >= 0
        shares = report.breakdown()
        assert abs(sum(shares.values()) - 1.0) < 1e-9

    @given(workloads(), st.floats(min_value=0.4, max_value=1.6))
    @settings(max_examples=15, deadline=None)
    def test_power_monotone_in_activity_scale(self, workload, scale):
        config = config_by_name("C5")
        library = default_library()
        design = RtlGenerator().generate(config)
        netlist = Synthesizer(library).synthesize(design)
        sim = ActivitySimulator(idiosyncrasy=0.0)
        analyzer = PowerAnalyzer(library)
        low = analyzer.analyze(netlist, sim.simulate(design, config, workload, scale=scale))
        high = analyzer.analyze(
            netlist, sim.simulate(design, config, workload, scale=scale * 1.2)
        )
        assert high.total >= low.total - 1e-9
