"""Unit tests for repro.arch.workloads."""

import pytest

from repro.arch.workloads import (
    LARGE_WORKLOADS,
    Phase,
    WORKLOADS,
    Workload,
    all_workloads,
    workload_by_name,
)


class TestCatalogue:
    def test_eight_evaluation_workloads(self):
        assert len(WORKLOADS) == 8
        assert {w.name for w in WORKLOADS} == {
            "dhrystone",
            "median",
            "multiply",
            "qsort",
            "rsort",
            "towers",
            "spmv",
            "vvadd",
        }

    def test_two_large_workloads(self):
        assert {w.name for w in LARGE_WORKLOADS} == {"gemm", "spmm"}

    def test_large_workloads_have_phases(self):
        for w in LARGE_WORKLOADS:
            assert w.is_large
            assert len(w.phases) >= 2
            assert sum(p.weight for p in w.phases) == pytest.approx(1.0)

    def test_evaluation_workloads_have_no_phases(self):
        for w in WORKLOADS:
            assert not w.is_large

    def test_large_workloads_run_millions_of_cycles_worth(self):
        for w in LARGE_WORKLOADS:
            assert w.instructions >= 1_000_000

    def test_mix_sums_to_one(self):
        for w in all_workloads():
            mix = (
                w.frac_int_alu
                + w.frac_int_mul
                + w.frac_fp
                + w.frac_load
                + w.frac_store
                + w.frac_branch
            )
            assert mix == pytest.approx(1.0)

    def test_lookup(self):
        assert workload_by_name("gemm").name == "gemm"
        with pytest.raises(KeyError):
            workload_by_name("doom")

    def test_workload_characters(self):
        # Sanity of the hand-written profiles.
        assert workload_by_name("vvadd").branch_entropy < 0.1  # streaming
        assert workload_by_name("qsort").branch_entropy > 0.5  # branchy
        assert workload_by_name("spmv").locality < 0.4  # irregular
        assert workload_by_name("multiply").ilp > 4.0  # ALU-dense


class TestProgramFeatures:
    def test_feature_keys_stable(self):
        feats = workload_by_name("dhrystone").program_features()
        assert "prog_branches" in feats
        assert "prog_dcache_footprint" in feats
        assert len(feats) == 11

    def test_counts_scale_with_instructions(self):
        w = workload_by_name("qsort")
        feats = w.program_features()
        assert feats["prog_branches"] == pytest.approx(w.instructions * w.frac_branch)
        assert feats["prog_loads"] == pytest.approx(w.instructions * w.frac_load)


class TestValidation:
    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError, match="sums to"):
            Workload(
                name="bad",
                instructions=100,
                frac_int_alu=0.5,
                frac_int_mul=0.0,
                frac_fp=0.0,
                frac_load=0.2,
                frac_store=0.2,
                frac_branch=0.2,
                branch_entropy=0.5,
                icache_footprint=1024,
                dcache_footprint=1024,
                locality=0.5,
                ilp=2.0,
            )

    def test_bad_entropy_rejected(self):
        with pytest.raises(ValueError, match="branch_entropy"):
            Workload(
                name="bad",
                instructions=100,
                frac_int_alu=0.4,
                frac_int_mul=0.0,
                frac_fp=0.0,
                frac_load=0.2,
                frac_store=0.2,
                frac_branch=0.2,
                branch_entropy=1.5,
                icache_footprint=1024,
                dcache_footprint=1024,
                locality=0.5,
                ilp=2.0,
            )

    def test_bad_phase_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            Phase("p", weight=0.0, activity_scale=1.0)

    def test_bad_phase_scale_rejected(self):
        with pytest.raises(ValueError, match="activity_scale"):
            Phase("p", weight=0.5, activity_scale=-1.0)
