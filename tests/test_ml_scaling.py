"""Unit tests for repro.ml.scaling (StandardScaler)."""

import numpy as np
import pytest

from repro.ml.scaling import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(100, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_not_divided_by_zero(self):
        X = np.column_stack([np.full(10, 3.0), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)
        assert np.isfinite(Z).all()

    def test_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-4, 9, size=(30, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.ones((5, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((5, 3)))

    def test_transform_new_data_uses_fit_stats(self):
        X = np.array([[0.0], [2.0]])
        scaler = StandardScaler().fit(X)
        assert scaler.transform([[4.0]])[0, 0] == pytest.approx(3.0)
