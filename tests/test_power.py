"""Unit tests for repro.power: reports, analyzer, golden traces."""

import numpy as np
import pytest

from repro.arch.config import BOOM_CONFIGS, config_by_name
from repro.arch.workloads import WORKLOADS, workload_by_name
from repro.power.report import ComponentPower, PowerReport
from repro.power.trace import golden_trace_power, power_scale_function


class TestComponentPower:
    def test_total_and_logic(self):
        cp = ComponentPower("X", clock=1.0, sram=2.0, register=0.5, comb=1.5)
        assert cp.total == pytest.approx(5.0)
        assert cp.logic == pytest.approx(2.0)

    def test_group_accessor(self):
        cp = ComponentPower("X", clock=1.0, sram=2.0, register=0.5, comb=1.5)
        assert cp.group("clock") == 1.0
        assert cp.group("logic") == 2.0
        assert cp.group("total") == 5.0
        with pytest.raises(KeyError):
            cp.group("thermal")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ComponentPower("X", clock=-1.0, sram=0.0, register=0.0, comb=0.0)


class TestPowerReport:
    def _report(self):
        return PowerReport(
            config_name="C1",
            workload_name="w",
            components=(
                ComponentPower("A", 1.0, 2.0, 0.5, 0.5),
                ComponentPower("B", 2.0, 1.0, 0.5, 1.5),
            ),
        )

    def test_totals(self):
        report = self._report()
        assert report.total == pytest.approx(9.0)
        assert report.group_total("clock") == pytest.approx(3.0)
        assert report.group_total("logic") == pytest.approx(3.0)

    def test_breakdown_sums_to_one(self):
        breakdown = self._report().breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_component_lookup(self):
        report = self._report()
        assert report.component("A").clock == 1.0
        with pytest.raises(KeyError):
            report.component("C")

    def test_as_rows(self):
        rows = self._report().as_rows()
        assert len(rows) == 2
        assert rows[0][0] == "A"


class TestGoldenPower:
    def test_power_positive_everywhere(self, flow):
        for cname in ("C1", "C8", "C15"):
            config = config_by_name(cname)
            for workload in WORKLOADS:
                report = flow.run(config, workload).power
                for comp in report.components:
                    assert comp.clock > 0
                    assert comp.register > 0
                    assert comp.comb > 0

    def test_observation1_clock_sram_dominate(self, flow):
        # The paper's Observation 1.
        shares = []
        for config in BOOM_CONFIGS:
            for workload in WORKLOADS:
                b = flow.run(config, workload).power.breakdown()
                shares.append(b["clock"] + b["sram"])
        assert np.mean(shares) > 0.55

    def test_power_scales_with_configuration(self, flow):
        w = workload_by_name("dhrystone")
        p1 = flow.run(config_by_name("C1"), w).power.total
        p8 = flow.run(config_by_name("C8"), w).power.total
        p15 = flow.run(config_by_name("C15"), w).power.total
        assert p1 < p8 < p15

    def test_power_depends_on_workload(self, flow):
        c8 = config_by_name("C8")
        totals = {w.name: flow.run(c8, w).power.total for w in WORKLOADS}
        assert max(totals.values()) > 1.1 * min(totals.values())

    def test_sram_only_in_sram_components(self, flow):
        report = flow.run(config_by_name("C8"), workload_by_name("qsort")).power
        assert report.component("RNU").sram == 0.0
        assert report.component("ICacheDataArray").sram > 0.0

    def test_position_power_sums_to_component_sram(self, flow):
        config = config_by_name("C8")
        res = flow.run(config, workload_by_name("qsort"))
        comp_net = res.netlist.component("IFU")
        comp_act = res.activity.component("IFU")
        total = sum(
            flow.analyzer.position_power(comp_net, comp_act, p.name)
            for p in comp_net.sram_positions
        )
        assert total == pytest.approx(res.power.component("IFU").sram)


class TestGoldenTrace:
    def test_trace_power_monotone_in_scale(self, flow):
        config = config_by_name("C2")
        gemm = workload_by_name("gemm")
        scales = np.linspace(0.5, 1.5, 64)
        powers = golden_trace_power(flow, config, gemm, scales)
        assert np.all(np.diff(powers) >= -1e-9)

    def test_anchor_interpolation_close_to_exact(self, flow):
        config = config_by_name("C2")
        gemm = workload_by_name("gemm")
        scales = np.array([0.6, 0.9, 1.3])
        approx = golden_trace_power(flow, config, gemm, scales, n_anchors=129)
        exact = np.array(
            [flow.power_at_scale(config, gemm, float(s)).total for s in scales]
        )
        assert np.allclose(approx, exact, rtol=2e-3)

    def test_scale_function_rejects_out_of_range(self, flow):
        fn = power_scale_function(
            flow, config_by_name("C2"), workload_by_name("gemm"), 0.5, 1.5
        )
        with pytest.raises(ValueError):
            fn(np.array([2.0]))

    def test_empty_scales_rejected(self, flow):
        with pytest.raises(ValueError):
            golden_trace_power(
                flow, config_by_name("C2"), workload_by_name("gemm"), np.array([])
            )
