"""Unit tests for repro.arch.config and repro.arch.params (Table II)."""

import numpy as np
import pytest

from repro.arch.config import BOOM_CONFIGS, BoomConfig, config_by_name, config_matrix
from repro.arch.params import (
    HARDWARE_PARAMETERS,
    RAW_PARAMETER_ROWS,
    expand_raw_parameters,
)


class TestTableII:
    def test_fifteen_configurations(self):
        assert len(BOOM_CONFIGS) == 15
        assert [c.name for c in BOOM_CONFIGS] == [f"C{i}" for i in range(1, 16)]

    def test_c1_values_match_paper(self):
        c1 = config_by_name("C1")
        assert c1["FetchWidth"] == 4
        assert c1["DecodeWidth"] == 1
        assert c1["FetchBufferEntry"] == 5
        assert c1["RobEntry"] == 16
        assert c1["IntPhyRegister"] == 36
        assert c1["FpPhyRegister"] == 36
        assert c1["LDQEntry"] == 4
        assert c1["STQEntry"] == 4
        assert c1["BranchCount"] == 6
        assert c1["MemIssueWidth"] == 1
        assert c1["IntIssueWidth"] == 1
        assert c1["DCacheWay"] == 2
        assert c1["DTLBEntry"] == 8
        assert c1["MSHREntry"] == 2
        assert c1["ICacheFetchBytes"] == 2

    def test_c15_values_match_paper(self):
        c15 = config_by_name("C15")
        assert c15["FetchWidth"] == 8
        assert c15["DecodeWidth"] == 5
        assert c15["FetchBufferEntry"] == 40
        assert c15["RobEntry"] == 140
        assert c15["IntPhyRegister"] == 140
        assert c15["FpPhyRegister"] == 140
        assert c15["LDQEntry"] == 36
        assert c15["BranchCount"] == 20
        assert c15["MemIssueWidth"] == 2
        assert c15["IntIssueWidth"] == 5
        assert c15["ICacheWay"] == 8
        assert c15["MSHREntry"] == 8

    def test_c7_rob_entry_is_81(self):
        # The odd one out in Table II.
        assert config_by_name("C7")["RobEntry"] == 81

    def test_paired_rows_share_values(self):
        for cfg in BOOM_CONFIGS:
            assert cfg["LDQEntry"] == cfg["STQEntry"]
            assert cfg["MemIssueWidth"] == cfg["FpIssueWidth"]
            assert cfg["DCacheWay"] == cfg["ICacheWay"]
            assert cfg["ITLBEntry"] == cfg["DTLBEntry"]

    def test_scale_is_monotone_end_to_end(self):
        c1, c15 = config_by_name("C1"), config_by_name("C15")
        for name in HARDWARE_PARAMETERS:
            assert c1[name] <= c15[name]

    def test_all_parameters_present(self):
        for cfg in BOOM_CONFIGS:
            assert set(cfg.params) == set(HARDWARE_PARAMETERS)


class TestBoomConfig:
    def test_index(self):
        assert config_by_name("C7").index == 7

    def test_subset(self):
        c1 = config_by_name("C1")
        assert c1.subset(("FetchWidth", "DecodeWidth")) == {
            "FetchWidth": 4,
            "DecodeWidth": 1,
        }

    def test_vector_order(self):
        c1 = config_by_name("C1")
        vec = c1.vector(("DecodeWidth", "FetchWidth"))
        assert vec.tolist() == [1.0, 4.0]

    def test_default_vector_uses_canonical_order(self):
        c1 = config_by_name("C1")
        assert c1.vector().shape == (len(HARDWARE_PARAMETERS),)
        assert c1.vector()[0] == c1["FetchWidth"]

    def test_missing_parameter_rejected(self):
        params = dict(config_by_name("C1").params)
        del params["RobEntry"]
        with pytest.raises(ValueError, match="missing"):
            BoomConfig(name="X", params=params)

    def test_unknown_parameter_rejected(self):
        params = dict(config_by_name("C1").params)
        params["Bogus"] = 1
        with pytest.raises(ValueError, match="unknown"):
            BoomConfig(name="X", params=params)

    def test_unknown_name_lookup(self):
        with pytest.raises(KeyError, match="C99"):
            config_by_name("C99")

    def test_config_matrix_shape(self):
        m = config_matrix()
        assert m.shape == (15, len(HARDWARE_PARAMETERS))
        assert np.all(m > 0)


class TestExpandRawParameters:
    def test_expands_paired_rows(self):
        raw = {row: 2 for row in RAW_PARAMETER_ROWS}
        expanded = expand_raw_parameters(raw)
        assert expanded["LDQEntry"] == 2
        assert expanded["STQEntry"] == 2
        assert set(expanded) == set(HARDWARE_PARAMETERS)

    def test_missing_row_raises(self):
        raw = {row: 2 for row in RAW_PARAMETER_ROWS[:-1]}
        with pytest.raises(KeyError):
            expand_raw_parameters(raw)

    def test_unknown_row_raises(self):
        raw = {row: 2 for row in RAW_PARAMETER_ROWS}
        raw["Nonsense"] = 3
        with pytest.raises(ValueError, match="unknown"):
            expand_raw_parameters(raw)

    def test_nonpositive_value_raises(self):
        raw = {row: 2 for row in RAW_PARAMETER_ROWS}
        raw["FetchWidth"] = 0
        with pytest.raises(ValueError, match="positive"):
            expand_raw_parameters(raw)
