"""Unit tests for repro.core.clock (clock power model, Eq. 1-8)."""

import pytest

from repro.arch.components import COMPONENTS
from repro.arch.config import config_by_name
from repro.arch.workloads import workload_by_name
from repro.core.clock import ClockPowerModel
from repro.ml.metrics import mape


class TestClockModel:
    def test_requires_fit(self, flow):
        model = ClockPowerModel(flow.library)
        with pytest.raises(RuntimeError, match="before fit"):
            model.predict_register_count("ROB", config_by_name("C1"))

    def test_empty_results_rejected(self, flow):
        with pytest.raises(ValueError):
            ClockPowerModel(flow.library).fit([])

    def test_register_count_exact_on_training_configs(self, autopower2, flow):
        # Ridge interpolates two points exactly (up to regularization).
        model = autopower2.clock_model
        for cname in ("C1", "C15"):
            config = config_by_name(cname)
            net = flow.netlist(config)
            for comp in COMPONENTS:
                true = net.component(comp.name).registers
                pred = model.predict_register_count(comp.name, config)
                assert pred == pytest.approx(true, rel=0.05)

    def test_register_count_generalizes(self, autopower2, flow, test_configs):
        model = autopower2.clock_model
        errors = []
        for config in test_configs:
            net = flow.netlist(config)
            for comp in COMPONENTS:
                errors.append(
                    (
                        net.component(comp.name).registers,
                        model.predict_register_count(comp.name, config),
                    )
                )
        true, pred = zip(*errors)
        assert mape(true, pred) < 8.0  # paper: 6.93 % for R and g combined

    def test_gating_rate_in_unit_interval(self, autopower2, test_configs):
        model = autopower2.clock_model
        for config in test_configs:
            for comp in COMPONENTS:
                g = model.predict_gating_rate(comp.name, config)
                assert 0.0 <= g <= 1.0

    def test_gating_rate_generalizes(self, autopower2, flow, test_configs):
        model = autopower2.clock_model
        true, pred = [], []
        for config in test_configs:
            net = flow.netlist(config)
            for comp in COMPONENTS:
                true.append(net.component(comp.name).gating_rate)
                pred.append(model.predict_gating_rate(comp.name, config))
        assert mape(true, pred) < 3.0

    def test_effective_active_rate_nonnegative(self, autopower2, flow, test_configs):
        model = autopower2.clock_model
        config = test_configs[0]
        res = flow.run(config, workload_by_name("qsort"))
        for comp in COMPONENTS:
            assert model.predict_effective_active_rate(comp.name, config, res.events) >= 0

    def test_component_clock_power_positive(self, autopower2, flow, c8):
        res = flow.run(c8, workload_by_name("dhrystone"))
        power = autopower2.clock_model.predict_component("ROB", c8, res.events)
        assert power > 0

    def test_group_accuracy_beats_paper_band(self, autopower2, flow, test_configs, workloads):
        # Paper: clock MAPE 11.37 % with 2 training configs.
        true, pred = [], []
        for config in test_configs:
            for workload in workloads:
                res = flow.run(config, workload)
                true.append(res.power.group_total("clock"))
                pred.append(
                    sum(autopower2.clock_model.predict(config, res.events).values())
                )
        assert mape(true, pred) < 12.0

    def test_predict_covers_all_components(self, autopower2, flow, c8):
        res = flow.run(c8, workload_by_name("towers"))
        preds = autopower2.clock_model.predict(c8, res.events)
        assert set(preds) == {c.name for c in COMPONENTS}
