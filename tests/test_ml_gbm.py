"""Unit tests for repro.ml.gbm (gradient boosting)."""

import numpy as np
import pytest

from repro.ml.gbm import GradientBoostingRegressor


def _friedman_like(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 4))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2] + X[:, 3]
    return X, y


class TestFit:
    def test_reduces_training_loss_monotonically_without_subsample(self):
        X, y = _friedman_like()
        model = GradientBoostingRegressor(n_estimators=50, learning_rate=0.2)
        model.fit(X, y)
        losses = np.array(model.train_losses_)
        assert np.all(np.diff(losses) <= 1e-9)

    def test_fits_nonlinear_function_well(self):
        X, y = _friedman_like()
        model = GradientBoostingRegressor(n_estimators=300, learning_rate=0.1, max_depth=3)
        model.fit(X, y)
        resid = model.predict(X) - y
        assert np.sqrt(np.mean(resid**2)) < 0.5

    def test_base_score_is_target_mean(self):
        X, y = _friedman_like(n=30)
        model = GradientBoostingRegressor(n_estimators=5).fit(X, y)
        assert model.base_score_ == pytest.approx(y.mean())

    def test_single_sample(self):
        model = GradientBoostingRegressor(n_estimators=5).fit([[1.0]], [3.0])
        assert model.predict([[1.0]])[0] == pytest.approx(3.0)

    def test_deterministic_for_fixed_seed(self):
        X, y = _friedman_like(n=60)
        kwargs = dict(n_estimators=30, subsample=0.7, colsample_bytree=0.6, random_state=7)
        a = GradientBoostingRegressor(**kwargs).fit(X, y).predict(X)
        b = GradientBoostingRegressor(**kwargs).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_seed_changes_results_with_subsampling(self):
        X, y = _friedman_like(n=60)
        a = GradientBoostingRegressor(n_estimators=30, subsample=0.6, random_state=0).fit(X, y)
        b = GradientBoostingRegressor(n_estimators=30, subsample=0.6, random_state=1).fit(X, y)
        assert not np.array_equal(a.predict(X), b.predict(X))

    def test_cannot_extrapolate_beyond_training_targets(self):
        # The mechanism behind the paper's few-shot argument: tree
        # ensembles cannot predict outside the training label range.
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(50, 2))
        y = 5.0 + 3.0 * X[:, 0]
        model = GradientBoostingRegressor(n_estimators=100).fit(X, y)
        far = model.predict(rng.uniform(5, 10, size=(50, 2)))
        assert far.max() <= y.max() + 1e-6
        assert far.min() >= y.min() - 1e-6

    def test_early_stopping_truncates_rounds(self):
        X = np.ones((10, 1))  # nothing to learn after round 1
        y = np.arange(10.0)
        model = GradientBoostingRegressor(
            n_estimators=100, early_stopping_rounds=3
        ).fit(X, y)
        assert model.n_trees_ < 100

    def test_staged_predict_lengths(self):
        X, y = _friedman_like(n=40)
        model = GradientBoostingRegressor(n_estimators=10).fit(X, y)
        stages = list(model.staged_predict(X))
        assert len(stages) == model.n_trees_ + 1

    def test_colsample_uses_feature_subsets(self):
        X, y = _friedman_like(n=60)
        model = GradientBoostingRegressor(
            n_estimators=20, colsample_bytree=0.5, random_state=0
        ).fit(X, y)
        sizes = {len(cols) for _, cols in model.trees_}
        assert sizes == {2}  # 4 features * 0.5


class TestValidation:
    def test_bad_n_estimators(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)

    def test_bad_learning_rate(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=1.5)

    def test_bad_subsample(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict([[1.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.ones((3, 2)), np.ones(2))

    def test_predict_feature_mismatch(self):
        model = GradientBoostingRegressor(n_estimators=2).fit(np.ones((4, 2)), np.arange(4.0))
        with pytest.raises(ValueError):
            model.predict(np.ones((1, 5)))
