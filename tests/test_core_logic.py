"""Unit tests for repro.core.logic (register + combinational models)."""

import pytest

from repro.arch.components import COMPONENTS
from repro.arch.config import config_by_name
from repro.arch.workloads import workload_by_name
from repro.core.logic import CombPowerModel, LogicPowerModel, RegisterPowerModel
from repro.ml.metrics import mape


class TestRegisterPowerModel:
    def test_positive_predictions(self, autopower2, flow, c8):
        events = flow.run(c8, workload_by_name("dhrystone")).events
        for comp in COMPONENTS:
            power = autopower2.logic_model.register_model.predict_component(
                comp.name, c8, events
            )
            assert power > 0

    def test_group_accuracy(self, autopower2, flow, test_configs, workloads):
        true, pred = [], []
        for config in test_configs:
            for w in workloads:
                res = flow.run(config, w)
                true.append(res.power.group_total("register"))
                pred.append(
                    sum(
                        autopower2.logic_model.register_model.predict_component(
                            c.name, config, res.events
                        )
                        for c in COMPONENTS
                    )
                )
        assert mape(true, pred) < 15.0

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            RegisterPowerModel().predict_component("ROB", config_by_name("C1"), None)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RegisterPowerModel().fit([])


class TestCombPowerModel:
    def test_positive_predictions(self, autopower2, flow, c8):
        events = flow.run(c8, workload_by_name("towers")).events
        for comp in COMPONENTS:
            power = autopower2.logic_model.comb_model.predict_component(
                comp.name, c8, events
            )
            assert power > 0

    def test_group_accuracy(self, autopower2, flow, test_configs, workloads):
        true, pred = [], []
        for config in test_configs:
            for w in workloads:
                res = flow.run(config, w)
                true.append(res.power.group_total("comb"))
                pred.append(
                    sum(
                        autopower2.logic_model.comb_model.predict_component(
                            c.name, config, res.events
                        )
                        for c in COMPONENTS
                    )
                )
        assert mape(true, pred) < 15.0

    def test_variation_captures_workloads(self, autopower2, flow, c8, workloads):
        # Comb power predictions must differ across workloads at a fixed
        # config (Eq. 12's variation term).
        preds = []
        for w in workloads:
            events = flow.run(c8, w).events
            preds.append(
                autopower2.logic_model.comb_model.predict_component(
                    "FU Pool", c8, events
                )
            )
        assert max(preds) > 1.05 * min(preds)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            CombPowerModel().predict_component("ROB", config_by_name("C1"), None)


class TestLogicPowerModel:
    def test_predict_component_returns_pair(self, autopower2, flow, c8):
        events = flow.run(c8, workload_by_name("median")).events
        register, comb = autopower2.logic_model.predict_component("LSU", c8, events)
        assert register > 0
        assert comb > 0

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            LogicPowerModel().predict_component("ROB", config_by_name("C1"), None)

    def test_predict_covers_all_components(self, autopower2, flow, c8):
        events = flow.run(c8, workload_by_name("median")).events
        preds = autopower2.logic_model.predict(c8, events)
        assert set(preds) == {c.name for c in COMPONENTS}
