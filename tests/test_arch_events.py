"""Unit tests for repro.arch.events."""

import pytest

from repro.arch.components import COMPONENTS
from repro.arch.events import COMPONENT_EVENTS, EVENT_NAMES, EventParams


def _full_counts(cycles=1000.0, fill=10.0):
    counts = {name: fill for name in EVENT_NAMES}
    counts["cycles"] = cycles
    return counts


class TestEventParams:
    def test_valid_construction(self):
        ev = EventParams(_full_counts())
        assert ev.cycles == 1000.0

    def test_missing_event_rejected(self):
        counts = _full_counts()
        del counts["icache_misses"]
        with pytest.raises(ValueError, match="missing"):
            EventParams(counts)

    def test_unknown_event_rejected(self):
        counts = _full_counts()
        counts["made_up"] = 1.0
        with pytest.raises(ValueError, match="unknown"):
            EventParams(counts)

    def test_negative_count_rejected(self):
        counts = _full_counts()
        counts["dcache_misses"] = -1.0
        with pytest.raises(ValueError, match="negative"):
            EventParams(counts)

    def test_zero_cycles_rejected(self):
        counts = _full_counts(cycles=0.0)
        with pytest.raises(ValueError, match="cycles"):
            EventParams(counts)

    def test_ipc(self):
        counts = _full_counts(cycles=100.0)
        counts["instructions"] = 250.0
        assert EventParams(counts).ipc == pytest.approx(2.5)

    def test_rate(self):
        ev = EventParams(_full_counts(cycles=1000.0, fill=10.0))
        assert ev.rate("dcache_misses") == pytest.approx(0.01)

    def test_scaled(self):
        ev = EventParams(_full_counts())
        doubled = ev.scaled(2.0)
        assert doubled.cycles == 2000.0
        assert doubled["dcache_misses"] == 20.0
        # Rates are scale-invariant.
        assert doubled.rate("dcache_misses") == ev.rate("dcache_misses")

    def test_scaled_rejects_nonpositive(self):
        ev = EventParams(_full_counts())
        with pytest.raises(ValueError):
            ev.scaled(0.0)


class TestComponentEvents:
    def test_every_component_has_event_mapping(self):
        for comp in COMPONENTS:
            assert comp.name in COMPONENT_EVENTS
            assert len(COMPONENT_EVENTS[comp.name]) >= 2

    def test_mapped_events_exist(self):
        for names in COMPONENT_EVENTS.values():
            for name in names:
                assert name in EVENT_NAMES

    def test_for_component(self):
        ev = EventParams(_full_counts())
        sub = ev.for_component("ROB")
        assert set(sub) == set(COMPONENT_EVENTS["ROB"])

    def test_rates_for_component(self):
        ev = EventParams(_full_counts(cycles=100.0, fill=5.0))
        rates = ev.rates_for_component("D-TLB")
        assert all(v == pytest.approx(0.05) for v in rates.values())

    def test_unknown_component(self):
        ev = EventParams(_full_counts())
        with pytest.raises(KeyError):
            ev.for_component("NoSuchUnit")
