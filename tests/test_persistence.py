"""Tests for model serialization (repro.ml.serialize, repro.core.persistence)."""

import numpy as np
import pytest

from repro.arch.config import config_by_name
from repro.arch.workloads import workload_by_name
from repro.core.autopower import AutoPower
from repro.core.persistence import load_autopower, save_autopower
from repro.library.stdcell import TechLibrary
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.serialize import (
    gbm_from_dict,
    gbm_to_dict,
    ridge_from_dict,
    ridge_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.ml.tree import RegressionTree


def _data(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 3))
    y = 3.0 * X[:, 0] - X[:, 1] ** 2 + 0.5 * X[:, 2]
    return X, y


class TestRidgeRoundTrip:
    def test_predictions_identical(self):
        X, y = _data()
        model = RidgeRegression(alpha=0.1, nonnegative=True).fit(X, y)
        clone = ridge_from_dict(ridge_to_dict(model))
        assert np.array_equal(model.predict(X), clone.predict(X))

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            ridge_to_dict(RidgeRegression())

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            ridge_from_dict({"kind": "tree"})


class TestTreeRoundTrip:
    def test_predictions_identical(self):
        X, y = _data()
        tree = RegressionTree(max_depth=4).fit(X, y)
        clone = tree_from_dict(tree_to_dict(tree))
        assert np.array_equal(tree.predict(X), clone.predict(X))

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            tree_to_dict(RegressionTree())


class TestGbmRoundTrip:
    def test_predictions_identical(self):
        X, y = _data()
        model = GradientBoostingRegressor(
            n_estimators=30, colsample_bytree=0.7, subsample=0.8
        ).fit(X, y)
        clone = gbm_from_dict(gbm_to_dict(model))
        assert np.array_equal(model.predict(X), clone.predict(X))

    def test_json_serializable(self):
        import json

        X, y = _data(n=20)
        model = GradientBoostingRegressor(n_estimators=5).fit(X, y)
        text = json.dumps(gbm_to_dict(model))
        clone = gbm_from_dict(json.loads(text))
        assert np.allclose(model.predict(X), clone.predict(X))


class TestAutoPowerRoundTrip:
    def test_save_load_identical_predictions(self, autopower2, flow, tmp_path):
        path = tmp_path / "autopower.json"
        save_autopower(autopower2, path)
        clone = load_autopower(path)

        for cname in ("C5", "C9"):
            config = config_by_name(cname)
            for wname in ("dhrystone", "spmv"):
                w = workload_by_name(wname)
                events = flow.run(config, w).events
                assert clone.predict_total(config, events, w) == pytest.approx(
                    autopower2.predict_total(config, events, w)
                )

    def test_metadata_preserved(self, autopower2, tmp_path):
        path = tmp_path / "autopower.json"
        save_autopower(autopower2, path)
        clone = load_autopower(path)
        assert clone.train_config_names == autopower2.train_config_names
        assert clone.sram_model.c_constant_mw == pytest.approx(
            autopower2.sram_model.c_constant_mw
        )

    def test_unfitted_save_rejected(self, flow, tmp_path):
        with pytest.raises(ValueError):
            save_autopower(AutoPower(library=flow.library), tmp_path / "x.json")

    def test_library_mismatch_rejected(self, autopower2, tmp_path):
        path = tmp_path / "autopower.json"
        save_autopower(autopower2, path)
        other = TechLibrary(name="synth28")
        with pytest.raises(ValueError, match="library"):
            load_autopower(path, library=other)

    def test_bad_version_rejected(self, autopower2, tmp_path):
        import json

        path = tmp_path / "autopower.json"
        save_autopower(autopower2, path)
        state = json.loads(path.read_text())
        state["format_version"] = 99
        path.write_text(json.dumps(state))
        with pytest.raises(ValueError, match="version"):
            load_autopower(path)
