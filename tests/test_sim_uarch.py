"""Unit tests for repro.sim.uarch (the true execution model)."""

import pytest

from repro.arch.config import BOOM_CONFIGS, config_by_name
from repro.arch.events import EVENT_NAMES
from repro.arch.workloads import WORKLOADS, workload_by_name
from repro.sim.uarch import (
    dcache_miss_ratio,
    dtlb_miss_ratio,
    execute,
    icache_miss_ratio,
    mispredict_probability,
)


class TestRates:
    def test_bigger_predictor_fewer_mispredicts(self):
        qsort = workload_by_name("qsort")
        small = mispredict_probability(config_by_name("C1"), qsort)
        big = mispredict_probability(config_by_name("C15"), qsort)
        assert big < small

    def test_entropy_increases_mispredicts(self):
        c8 = config_by_name("C8")
        assert mispredict_probability(c8, workload_by_name("qsort")) > (
            mispredict_probability(c8, workload_by_name("vvadd"))
        )

    def test_bigger_cache_fewer_misses(self):
        spmv = workload_by_name("spmv")
        assert dcache_miss_ratio(config_by_name("C15"), spmv) < (
            dcache_miss_ratio(config_by_name("C1"), spmv)
        )

    def test_fitting_footprint_low_misses(self):
        multiply = workload_by_name("multiply")  # 8 KB footprint
        assert dcache_miss_ratio(config_by_name("C15"), multiply) < 0.01

    def test_icache_miss_bounded(self):
        for config in BOOM_CONFIGS:
            for workload in WORKLOADS:
                assert 0.0 < icache_miss_ratio(config, workload) <= 0.25

    def test_bigger_tlb_fewer_misses(self):
        spmv = workload_by_name("spmv")
        assert dtlb_miss_ratio(config_by_name("C15"), spmv) < (
            dtlb_miss_ratio(config_by_name("C1"), spmv)
        )


class TestExecute:
    def test_all_events_present_and_nonnegative(self):
        res = execute(config_by_name("C8"), workload_by_name("dhrystone"))
        assert set(res.events) == set(EVENT_NAMES)
        assert all(v >= 0 for v in res.events.values())

    def test_ipc_bounded_by_decode_width(self):
        for config in BOOM_CONFIGS:
            for workload in WORKLOADS:
                res = execute(config, workload)
                assert 0.05 < res.ipc <= config["DecodeWidth"]

    def test_bigger_machine_is_faster(self):
        for workload in WORKLOADS:
            small = execute(config_by_name("C1"), workload)
            big = execute(config_by_name("C15"), workload)
            assert big.ipc > small.ipc

    def test_throughput_clamps_hold(self):
        for config in BOOM_CONFIGS:
            for workload in WORKLOADS:
                res = execute(config, workload)
                cycles = res.cycles
                assert res.events["decode_uops"] <= 0.99 * config["DecodeWidth"] * cycles
                assert res.events["int_issues"] <= 0.99 * config["IntIssueWidth"] * cycles
                assert res.events["fp_issues"] <= 0.99 * config["FpIssueWidth"] * cycles
                assert res.events["dcache_accesses"] <= config["MemIssueWidth"] * cycles
                assert res.events["fetch_packets"] <= cycles

    def test_misses_less_than_accesses(self):
        for config in (config_by_name("C1"), config_by_name("C15")):
            for workload in WORKLOADS:
                res = execute(config, workload)
                assert res.events["icache_misses"] <= res.events["icache_accesses"]
                assert res.events["dcache_misses"] <= res.events["dcache_accesses"]
                assert res.events["dtlb_misses"] <= res.events["dtlb_accesses"]

    def test_deterministic(self):
        a = execute(config_by_name("C5"), workload_by_name("qsort"))
        b = execute(config_by_name("C5"), workload_by_name("qsort"))
        assert a == b

    def test_scaled_rates(self):
        res = execute(config_by_name("C5"), workload_by_name("qsort"))
        rates = res.scaled_rates(2.0)
        assert rates["instructions"] == pytest.approx(2.0 * res.rate("instructions"))

    def test_memory_heavy_workload_stresses_dcache(self):
        c8 = config_by_name("C8")
        spmv = execute(c8, workload_by_name("spmv"))
        multiply = execute(c8, workload_by_name("multiply"))
        assert spmv.rate("dcache_misses") > multiply.rate("dcache_misses")
