"""Tests for ``repro.dse``: flow cache, grid generation, DSE jobs.

The core contracts under test:

* warm flow results — from the disk cache, from worker merges, or both
  — are *byte-identical* (``pickle.dumps`` equality) to the cold run,
* the canonical key encoder is process-stable and order-insensitive,
* a repeated sweep performs zero flow executions,
* the async job manager validates synchronously, ranks deterministically
  and cancels cleanly, end-to-end through the HTTP gateway.
"""

from __future__ import annotations

import http.client
import json
import pickle

import pytest

import repro.api as api
from repro.arch.config import config_by_name
from repro.arch.workloads import workload_by_name
from repro.dse.cache import FLOW_CACHE_VERSION, FlowDiskCache, content_key
from repro.dse.grid import generate_grid, grid_size, raw_rows_of
from repro.dse.jobs import DseError, DseJobManager, normalize_spec
from repro.library.stdcell import extended_library
from repro.parallel import get_executor
from repro.serving import GatewayThread
from repro.serving.client import ServingClient
from repro.vlsi.flow import VlsiFlow

# A tiny grid every sweep test shares: 2x2 points on C8, all valid.
AXES = {"RobEntry": [64, 96], "FetchBufferEntry": [16, 24]}


def _http(port, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    decoded = json.loads(response.read().decode("utf-8"))
    conn.close()
    return response.status, decoded


# ---------------------------------------------------------------------------
# Canonical keys
# ---------------------------------------------------------------------------
class TestContentKey:
    def test_deterministic_and_order_insensitive(self):
        a = content_key({"x": 1, "y": [2.5, "z"]}, {"p", "q"})
        b = content_key({"y": [2.5, "z"], "x": 1}, {"q", "p"})
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_distinguishes_values_and_types(self):
        assert content_key(1) != content_key(2)
        assert content_key(1) != content_key(1.0)
        assert content_key("1") != content_key(1)
        assert content_key([1, 2]) != content_key([2, 1])
        assert content_key(None) != content_key(False)

    def test_covers_configs_and_workloads(self):
        c8 = config_by_name("C8")
        assert content_key(c8) == content_key(config_by_name("C8"))
        assert content_key(c8) != content_key(config_by_name("C9"))
        assert content_key(workload_by_name("qsort")) != content_key(
            workload_by_name("gemm")
        )

    def test_rejects_unencodable_objects(self):
        with pytest.raises(TypeError, match="canonically encode"):
            content_key(object())


# ---------------------------------------------------------------------------
# The disk store
# ---------------------------------------------------------------------------
class TestFlowDiskCache:
    def test_round_trip_and_counters(self, tmp_path):
        store = FlowDiskCache(str(tmp_path))
        key = content_key("entry")
        assert store.get(key) is None
        store.put(key, {"power": 1.5})
        assert store.get(key) == {"power": 1.5}
        snap = store.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["stores"] == 1 and snap["errors"] == 0
        assert store.entry_count() == 1
        assert store.size_bytes() > 0

    def test_version_skew_reads_as_miss(self, tmp_path):
        store = FlowDiskCache(str(tmp_path))
        key = content_key("skew")
        store.put(key, "payload")
        path = store.path_for(key)
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["version"] = FLOW_CACHE_VERSION + 1
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        assert store.get(key) is None
        assert store.stats.errors == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = FlowDiskCache(str(tmp_path))
        key = content_key("corrupt")
        store.put(key, "payload")
        with open(store.path_for(key), "wb") as handle:
            handle.write(b"\x80garbage")
        assert store.get(key) is None
        assert store.stats.errors == 1

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        # A renamed/copied entry file must not serve the wrong payload.
        store = FlowDiskCache(str(tmp_path))
        source, target = content_key("source"), content_key("target")
        store.put(source, "payload")
        import os
        os.makedirs(os.path.dirname(store.path_for(target)), exist_ok=True)
        os.replace(store.path_for(source), store.path_for(target))
        assert store.get(target) is None

    def test_eviction_is_lru_and_size_bounded(self, tmp_path):
        store = FlowDiskCache(str(tmp_path), max_bytes=1)
        old, new = content_key("old"), content_key("new")
        store.put(old, "x" * 100)
        store.put(new, "y" * 100)
        # The bound is 1 byte: the older entry must be gone.
        assert store.stats.evictions >= 1
        assert store.size_bytes() <= 200

    def test_clear_removes_everything(self, tmp_path):
        store = FlowDiskCache(str(tmp_path))
        for i in range(3):
            store.put(content_key("clear", i), i)
        assert store.clear() == 3
        assert store.entry_count() == 0

    def test_handle_pickles_to_directory_reference(self, tmp_path):
        store = FlowDiskCache(str(tmp_path))
        store.put(content_key("travel"), "payload")
        store.stats.hits = 7
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.max_bytes == store.max_bytes
        assert clone.stats.hits == 0  # counters do not travel
        assert clone.get(content_key("travel")) == "payload"


# ---------------------------------------------------------------------------
# Grid generation
# ---------------------------------------------------------------------------
class TestGrid:
    def test_raw_rows_round_trip(self):
        for name in ("C1", "C8", "C15"):
            config = config_by_name(name)
            rows = raw_rows_of(config)
            assert len(rows) == 14
            regenerated, dropped = generate_grid(
                config, {row: [value] for row, value in rows.items()}, None
            )
            assert dropped == 0 and len(regenerated) == 1
            assert dict(regenerated[0].params) == dict(config.params)

    def test_deterministic_names_and_order(self):
        first, _ = generate_grid("C8", AXES, None)
        second, _ = generate_grid("C8", AXES, None)
        assert [c.name for c in first] == [c.name for c in second]
        assert all(c.name.startswith("dse-") for c in first)
        assert len(first) == grid_size(AXES) == 4

    def test_reaches_a_thousand_valid_points(self):
        axes = {
            "RobEntry": [48, 64, 96, 128, 160],
            "FetchBufferEntry": [8, 16, 24, 32],
            "IntPhyRegister": [64, 80, 96, 112],
            "LDQ/STQEntry": [8, 16, 24],
            "DCache/ICacheWay": [2, 4, 8],
            "MSHREntry": [2, 4, 8],
        }
        configs, dropped = generate_grid("C8", axes, None)
        assert len(configs) >= 1000
        assert len(configs) + dropped <= grid_size(axes)

    @pytest.mark.parametrize(
        "axes, match",
        [
            ({}, "at least one axis"),
            ({"NoSuchRow": [1]}, "unknown parameter rows"),
            ({"RobEntry": []}, "no values"),
            ({"RobEntry": [0]}, "positive"),
        ],
    )
    def test_rejects_bad_axes(self, axes, match):
        with pytest.raises(ValueError, match=match):
            generate_grid("C8", axes, None)

    def test_enforces_max_configs(self):
        with pytest.raises(ValueError, match="more than the 3 allowed"):
            generate_grid("C8", AXES, 3)


# ---------------------------------------------------------------------------
# Flow integration: byte-identity across every cache path (satellite 3)
# ---------------------------------------------------------------------------
class TestFlowCacheMerge:
    """`run_many` merges — worker- or disk-produced — equal the serial run."""

    CONFIGS = ["C3", "C8"]
    WORKLOADS = ["qsort", "towers"]

    def _pairs(self):
        configs = [config_by_name(n) for n in self.CONFIGS]
        workloads = [workload_by_name(n) for n in self.WORKLOADS]
        return configs, workloads

    def _sweep(self, flow):
        configs, workloads = self._pairs()
        return flow.run_many(configs, workloads)

    def test_parallel_merges_byte_identical_to_serial(self, tmp_path):
        configs, workloads = self._pairs()
        serial = VlsiFlow(disk_cache=None).run_many(configs, workloads)
        for backend in ("thread", "process"):
            flow = VlsiFlow(disk_cache=None)
            merged = flow.run_many(
                configs, workloads, executor=get_executor(2, backend)
            )
            assert [pickle.dumps(r) for r in merged] == [
                pickle.dumps(r) for r in serial
            ], f"{backend} merge diverged from the serial sweep"

    def test_disk_warm_results_byte_identical_to_cold(self, tmp_path):
        store = FlowDiskCache(str(tmp_path))
        cold_flow = VlsiFlow(disk_cache=store)
        cold = self._sweep(cold_flow)
        assert cold_flow.executions == len(cold)
        warm_flow = VlsiFlow(disk_cache=FlowDiskCache(str(tmp_path)))
        warm = self._sweep(warm_flow)
        assert warm_flow.executions == 0
        assert warm_flow.disk_cache.stats.misses == 0
        assert warm_flow.disk_cache.stats.hits == len(cold)
        assert [pickle.dumps(r) for r in warm] == [
            pickle.dumps(r) for r in cold
        ]

    def test_disabled_cache_produces_equal_results(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FLOW_CACHE", "1")
        bare_flow = VlsiFlow()  # "auto" resolves to no disk cache
        assert bare_flow.disk_cache is None
        bare = self._sweep(bare_flow)
        monkeypatch.delenv("REPRO_NO_FLOW_CACHE")
        cached_flow = VlsiFlow(disk_cache=FlowDiskCache(str(tmp_path)))
        cached = self._sweep(cached_flow)
        assert [pickle.dumps(r) for r in bare] == [
            pickle.dumps(r) for r in cached
        ]

    def test_distinct_fingerprints_partition_the_store(self):
        assert VlsiFlow().fingerprint() == VlsiFlow().fingerprint()
        assert (
            VlsiFlow().fingerprint()
            != VlsiFlow(library=extended_library()).fingerprint()
        )


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------
class TestNormalizeSpec:
    def test_fills_defaults(self):
        spec = normalize_spec({"axes": AXES})
        assert spec["base"].name == "C8"
        assert spec["method"] == "golden"
        assert [c.name for c in spec["train"]] == ["C1", "C15"]
        from repro.arch.workloads import WORKLOADS

        assert len(spec["workloads"]) == len(WORKLOADS)
        assert spec["library"] == "default"

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"axes": None}, "axes"),
            ({"axes": {"NoSuchRow": [1]}}, "unknown parameter rows"),
            ({"axes": {"RobEntry": [0]}}, "positive ints"),
            ({"base": "C999"}, "C999"),
            ({"workloads": ["whetstone"]}, "whetstone"),
            ({"method": "oracle"}, "unknown method"),
            ({"library": "tsmc7"}, "unknown library"),
            ({"max_configs": 0}, "max_configs"),
            ({"chunk": 0}, "chunk"),
            (
                {"axes": {"RobEntry": [2, 4, 8]}, "max_configs": 2},
                "more than the 2 allowed",
            ),
        ],
    )
    def test_rejects_bad_specs_synchronously(self, mutation, match):
        spec = {"axes": dict(AXES)}
        spec.update(mutation)
        with pytest.raises(DseError, match=match) as excinfo:
            normalize_spec(spec)
        assert excinfo.value.status == 400


class TestDseJobs:
    SPEC = {"axes": AXES, "workloads": ["qsort"], "chunk": 2}

    def _finish(self, job, timeout=60.0):
        job.thread.join(timeout=timeout)
        assert not job.thread.is_alive()
        return job

    def test_golden_job_ranks_ascending(self):
        manager = DseJobManager()
        job = self._finish(manager.submit(dict(self.SPEC)))
        assert job.state == "done"
        payload = job.results_payload()
        assert payload["configs"] == 4
        ranked = payload["ranked"]
        means = [entry["mean_total_mw"] for entry in ranked]
        assert means == sorted(means)
        assert [entry["rank"] for entry in ranked] == [1, 2, 3, 4]
        # Every entry names its grid point on the submitted axes.
        assert set(ranked[0]["point"]) == set(AXES)
        assert ranked[0]["per_workload"].keys() == {"qsort"}
        snapshot = job.snapshot()
        assert snapshot["progress"]["percent"] == 100.0
        assert snapshot["flow"]["executions"] >= 0

    def test_warm_resubmission_runs_zero_flows(self):
        manager = DseJobManager()
        cold = self._finish(manager.submit(dict(self.SPEC)))
        warm = self._finish(manager.submit(dict(self.SPEC)))
        assert warm.state == "done"
        stats = warm.snapshot()["flow"]
        assert stats["executions"] == 0
        assert stats["cache"]["misses"] == 0
        # Byte-identical ranked results, not merely equal.
        assert json.dumps(warm.results) == json.dumps(cold.results)

    def test_model_method_predicts_without_flow_runs(self):
        manager = DseJobManager()
        spec = dict(self.SPEC, method=api.method_names()[0], train=["C1", "C15"])
        job = self._finish(manager.submit(spec))
        assert job.state == "done", job.error
        assert all(e["kind"] == "predicted" for e in job.results)

    def test_results_before_done_answer_409(self):
        manager = DseJobManager()
        job = self._finish(manager.submit(dict(self.SPEC)))
        pending = manager.get(job.id)
        pending.state = "running"  # simulate an in-flight poll
        with pytest.raises(DseError) as excinfo:
            pending.results_payload()
        assert excinfo.value.status == 409
        pending.state = "done"

    def test_unknown_job_answers_404(self):
        with pytest.raises(DseError) as excinfo:
            DseJobManager().get("dse-999")
        assert excinfo.value.status == 404

    def test_max_running_sheds_with_429(self):
        manager = DseJobManager(max_running=0)
        with pytest.raises(DseError) as excinfo:
            manager.submit(dict(self.SPEC))
        assert excinfo.value.status == 429

    def test_cancel_and_stop(self):
        manager = DseJobManager()
        # A wide-but-cheap sweep with chunk=1 leaves room to cancel.
        spec = {
            "axes": {"RobEntry": list(range(32, 160, 2))},
            "workloads": ["qsort"],
            "chunk": 1,
        }
        job = manager.submit(spec)
        manager.cancel(job.id)
        self._finish(job)
        assert job.state in ("cancelled", "done")
        manager.stop(timeout=5.0)
        assert manager.snapshot()["submitted"] == 1


# ---------------------------------------------------------------------------
# Gateway end-to-end
# ---------------------------------------------------------------------------
class TestGatewayDse:
    @pytest.fixture(scope="class")
    def gateway(self, autopower2):
        with GatewayThread(
            api.PredictionService(autopower2), max_wait_ms=0.0
        ) as handle:
            yield handle

    @pytest.fixture(scope="class")
    def client(self, gateway):
        return ServingClient(port=gateway.port, max_retries=0)

    SPEC = {"axes": AXES, "workloads": ["qsort"], "chunk": 2}

    def test_submit_poll_results_cycle(self, client):
        ticket = client.submit_dse(self.SPEC)
        assert ticket["state"] in ("pending", "running", "done")
        assert ticket["poll"] == f"/dse/{ticket['id']}"
        final = client.wait_dse(ticket["id"], timeout=60.0)
        assert final["state"] == "done"
        results = client.dse_results(ticket["id"])
        assert results["configs"] == 4
        top = client.dse_results(ticket["id"], top=2)
        assert top["returned"] == 2
        assert top["ranked"] == results["ranked"][:2]
        listing = client.dse_jobs()
        assert any(j["id"] == ticket["id"] for j in listing["jobs"])

    def test_warm_http_resubmission_is_all_hits(self, client):
        cold = client.submit_dse(self.SPEC)
        client.wait_dse(cold["id"], timeout=60.0)
        warm = client.submit_dse(self.SPEC)
        status = client.wait_dse(warm["id"], timeout=60.0)
        assert status["flow"]["executions"] == 0
        assert status["flow"]["cache"]["misses"] == 0
        assert (
            client.dse_results(warm["id"])["ranked"]
            == client.dse_results(cold["id"])["ranked"]
        )

    def test_bad_submissions_answer_400(self, gateway):
        for payload in (
            [1, 2],  # not an object
            {"axes": AXES, "shoe_size": 43},  # unknown field
            {"base": "C8"},  # missing axes
            {"axes": {"NoSuchRow": [1]}},  # semantic: unknown row
            {"axes": AXES, "method": "oracle"},  # semantic: unknown method
        ):
            status, body = _http(gateway.port, "POST", "/dse", payload)
            assert status == 400, body
            assert "error" in body

    def test_unknown_job_and_method_statuses(self, gateway):
        assert _http(gateway.port, "GET", "/dse/dse-999")[0] == 404
        assert _http(gateway.port, "GET", "/dse/dse-999/results")[0] == 404
        assert _http(gateway.port, "PUT", "/dse", {})[0] == 405
        status, body = _http(
            gateway.port, "GET", "/dse/dse-1/results?top=banana"
        )
        assert status == 400

    def test_cancel_over_http(self, client):
        spec = {
            "axes": {"RobEntry": list(range(32, 160, 2))},
            "workloads": ["qsort"],
            "chunk": 1,
        }
        ticket = client.submit_dse(spec)
        answer = client.cancel_dse(ticket["id"])
        assert answer["cancel_requested"] is True
        final = client.wait_dse(ticket["id"], timeout=60.0)
        assert final["state"] in ("cancelled", "done")

    def test_stats_carry_the_dse_block(self, client):
        stats = client.stats()
        assert "dse" in stats
        assert stats["dse"]["submitted"] >= 1
        assert "by_state" in stats["dse"]
