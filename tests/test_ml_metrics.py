"""Unit tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    mape,
    max_error,
    mean_absolute_error,
    pearson_r,
    r2_score,
    rmse,
)


class TestMape:
    def test_exact_prediction_is_zero(self):
        assert mape([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_known_value(self):
        assert mape([100.0], [104.36]) == pytest.approx(4.36)

    def test_symmetric_under_over(self):
        assert mape([100.0], [90.0]) == pytest.approx(10.0)
        assert mape([100.0], [110.0]) == pytest.approx(10.0)

    def test_rejects_zero_truth(self):
        with pytest.raises(ValueError, match="undefined"):
            mape([0.0, 1.0], [1.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            mape([1.0, 2.0], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mape([], [])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            mape([1.0, float("nan")], [1.0, 1.0])

    def test_mean_of_percent_errors(self):
        # 10% and 30% -> 20%
        assert mape([10.0, 10.0], [11.0, 13.0]) == pytest.approx(20.0)


class TestR2:
    def test_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_can_be_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [3.0, 3.0, -2.0]) < 0.0

    def test_constant_truth_exact(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0

    def test_constant_truth_inexact(self):
        assert r2_score([2.0, 2.0], [2.0, 3.0]) == 0.0


class TestPearson:
    def test_perfect_linear(self):
        assert pearson_r([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [-1, -2, -3]) == pytest.approx(-1.0)

    def test_scale_invariant(self):
        y = [1.0, 3.0, 2.0, 5.0]
        p = [2.0, 6.0, 4.0, 10.0]
        assert pearson_r(y, p) == pytest.approx(1.0)

    def test_constant_prediction_is_zero(self):
        assert pearson_r([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]) == 0.0

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            pearson_r([1.0], [1.0])


class TestOtherMetrics:
    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 0.0]) == pytest.approx(1.5)

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=50)
        p = t + rng.normal(size=50)
        assert rmse(t, p) >= mean_absolute_error(t, p)

    def test_max_error(self):
        assert max_error([1.0, 2.0, 3.0], [1.0, 5.0, 2.5]) == pytest.approx(3.0)

    def test_accepts_2d_input_ravel(self):
        t = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert mean_absolute_error(t, t) == 0.0
