"""Tests for the ``repro.api`` façade: protocol, registry, persistence v2,
and the batched prediction service."""

import json

import numpy as np
import pytest

import repro.api as api
from repro.arch.config import config_by_name
from repro.arch.workloads import workload_by_name
from repro.core.autopower import AutoPower
from repro.core.persistence import load_autopower, save_autopower

ALL_METHODS = (
    "autopower",
    "autopower-minus",
    "mcpat",
    "mcpat-calib",
    "mcpat-calib-component",
)


@pytest.fixture(scope="module")
def fitted(flow, train_configs, workloads):
    """Every registered method, fitted on the shared 2-config split."""
    return {
        name: api.fit(name, flow=flow, train_configs=train_configs,
                      workloads=workloads)
        for name in ALL_METHODS
    }


@pytest.fixture(scope="module")
def eval_cells(flow, test_configs, workloads):
    """(config, workload, events) for a slice of the test split."""
    return [
        (c, w, flow.run(c, w).events) for c in test_configs[:4] for w in workloads
    ]


class TestRegistry:
    def test_lists_all_five_methods(self):
        assert api.method_names() == ALL_METHODS

    def test_display_name_aliases_resolve(self):
        # The historical experiment names keep working.
        assert api.get_method("AutoPower").name == "autopower"
        assert api.get_method("AutoPower-").name == "autopower-minus"
        assert api.get_method("McPAT-Calib").name == "mcpat-calib"
        assert api.get_method("McPAT-Calib+Comp").name == "mcpat-calib-component"

    def test_normalization(self):
        assert api.get_method("AUTOPOWER_MINUS").name == "autopower-minus"

    def test_unknown_method_lists_known(self):
        with pytest.raises(KeyError, match="autopower"):
            api.get_method("xgboost")

    def test_duplicate_registration_rejected(self):
        spec = api.get_method("autopower")
        with pytest.raises(ValueError, match="already registered"):
            api.register(spec)

    def test_rejected_replace_leaves_registry_intact(self):
        # A colliding alias must fail before any mutation.
        import dataclasses

        original = api.get_method("autopower")
        bad = dataclasses.replace(original, aliases=("mcpat",))
        with pytest.raises(ValueError, match="collides"):
            api.register(bad, replace=True)
        assert api.get_method("autopower") is original
        assert api.get_method("mcpat").name == "mcpat"

    def test_spec_for_instances(self, fitted):
        for name, model in fitted.items():
            assert api.spec_for(model).name == name

    def test_create_returns_unfitted_instances(self, flow):
        model = api.create("autopower", library=flow.library, n_jobs=2)
        assert isinstance(model, AutoPower)
        assert model.n_jobs == 2
        assert not model._fitted

    def test_every_method_satisfies_protocol(self, fitted):
        for model in fitted.values():
            assert isinstance(model, api.PowerModel)

    def test_supports_reports_flag_matches_models(self, fitted):
        for name, model in fitted.items():
            assert api.get_method(name).supports_reports == api.supports_reports(model)


class TestProtocolPredictions:
    def test_predict_totals_matches_scalar_loop(self, fitted, eval_cells):
        # Guards the de-branching of evaluate_methods: the batched
        # protocol path must reproduce the per-cell scalar calls that the
        # pre-refactor runner issued, to 1e-12.
        for name, model in fitted.items():
            for config in {c.name for c, _, _ in eval_cells}:
                cells = [cell for cell in eval_cells if cell[0].name == config]
                cfg = cells[0][0]
                scalar = np.array(
                    [model.predict_total(cfg, e, w) for _, w, e in cells]
                )
                batched = np.asarray(
                    model.predict_totals(
                        cfg, [e for _, _, e in cells], [w for _, w, _ in cells]
                    ),
                    dtype=float,
                )
                np.testing.assert_allclose(batched, scalar, rtol=1e-12, atol=0,
                                           err_msg=name)

    def test_fit_results_accepts_precomputed_results(self, flow, train_configs,
                                                     workloads):
        results = flow.run_many(train_configs, workloads)
        model = api.create("mcpat-calib", library=flow.library).fit_results(results)
        c8 = config_by_name("C8")
        events = flow.run(c8, workloads[0]).events
        assert model.predict_total(c8, events) > 0


class TestPersistenceV2:
    def test_round_trip_every_method(self, fitted, eval_cells, tmp_path):
        for name, model in fitted.items():
            path = tmp_path / f"{name}.json"
            api.save_model(model, path)
            envelope = json.loads(path.read_text())
            assert envelope["format_version"] == 2
            assert envelope["method"] == name
            clone = api.load_model(path)
            assert type(clone) is type(model)
            for config, w, events in eval_cells[:6]:
                assert clone.predict_total(config, events, w) == (
                    model.predict_total(config, events, w)
                )

    def test_envelope_library_field(self, fitted, flow, tmp_path):
        api.save_model(fitted["autopower"], tmp_path / "ap.json")
        assert json.loads((tmp_path / "ap.json").read_text())["library"] == (
            flow.library.name
        )
        api.save_model(fitted["mcpat-calib"], tmp_path / "mc.json")
        assert json.loads((tmp_path / "mc.json").read_text())["library"] is None

    def test_unfitted_save_rejected(self, flow, tmp_path):
        with pytest.raises(ValueError):
            api.save_model(api.create("mcpat-calib"), tmp_path / "x.json")

    def test_unregistered_class_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="registered"):
            api.save_model(object(), tmp_path / "x.json")

    def test_bad_version_rejected(self, fitted, tmp_path):
        path = tmp_path / "m.json"
        api.save_model(fitted["mcpat"], path)
        envelope = json.loads(path.read_text())
        envelope["format_version"] = 99
        path.write_text(json.dumps(envelope))
        with pytest.raises(ValueError, match="version"):
            api.load_model(path)


def _as_v1_file(model: AutoPower, path) -> None:
    """Write the pre-registry format-v1 AutoPower layout (flat envelope)."""
    payload = model.to_state()
    state = {
        "format_version": 1,
        "library": model.library.name,
        "train_config_names": payload["train_config_names"],
        "clock": payload["clock"],
        "sram": payload["sram"],
        "logic": payload["logic"],
    }
    path.write_text(json.dumps(state))


class TestLegacyV1Compat:
    def test_v1_file_loads_and_upgrades_byte_identically(
        self, autopower2, flow, eval_cells, tmp_path
    ):
        # A format-v1 file written before the repro.api redesign must
        # still load — through both load_autopower and load_model — and
        # re-serializing it must produce the same v2 file (and therefore
        # byte-identical predictions) as saving the original model.
        v1_path = tmp_path / "model_v1.json"
        _as_v1_file(autopower2, v1_path)

        from_v1 = load_autopower(v1_path)
        also_from_v1 = api.load_model(v1_path)
        assert isinstance(also_from_v1, AutoPower)

        v2_direct = tmp_path / "direct_v2.json"
        v2_upgraded = tmp_path / "upgraded_v2.json"
        api.save_model(autopower2, v2_direct)
        api.save_model(from_v1, v2_upgraded)
        assert v2_direct.read_bytes() == v2_upgraded.read_bytes()

        reloaded = api.load_model(v2_upgraded)
        for config, w, events in eval_cells[:8]:
            expected = autopower2.predict_total(config, events, w)
            assert from_v1.predict_total(config, events, w) == expected
            assert reloaded.predict_total(config, events, w) == expected

    def test_save_autopower_shim_writes_v2(self, autopower2, tmp_path):
        path = tmp_path / "ap.json"
        save_autopower(autopower2, path)
        assert json.loads(path.read_text())["format_version"] == 2
        clone = load_autopower(path)
        assert clone.train_config_names == autopower2.train_config_names

    def test_load_autopower_shim_rejects_other_methods(self, fitted, tmp_path):
        path = tmp_path / "mc.json"
        api.save_model(fitted["mcpat-calib"], path)
        with pytest.raises(ValueError, match="AutoPower"):
            load_autopower(path)


class TestPredictionService:
    @pytest.fixture(scope="class")
    def requests(self, eval_cells):
        return [
            api.PredictRequest(config=c, events=e, workload=w)
            for c, w, e in eval_cells
        ]

    def test_names_resolve_in_requests(self, flow, dhrystone):
        events = flow.run(config_by_name("C8"), dhrystone).events
        req = api.PredictRequest("C8", events, "dhrystone")
        assert req.config.name == "C8"
        assert req.workload.name == "dhrystone"

    def test_invalid_kind_rejected(self, flow, c8, dhrystone):
        events = flow.run(c8, dhrystone).events
        with pytest.raises(ValueError, match="kind"):
            api.PredictRequest(c8, events, dhrystone, kind="group")

    def test_trace_requires_scales(self, flow, c8, dhrystone):
        events = flow.run(c8, dhrystone).events
        with pytest.raises(ValueError, match="scales"):
            api.PredictRequest(c8, events, dhrystone, kind="trace")

    @pytest.mark.parametrize(
        "scales", [[], [0.0], [-1.0], [1.0, float("nan")]],
        ids=["empty", "zero", "negative", "nan"],
    )
    def test_trace_rejects_unusable_scales_at_construction(
        self, flow, c8, dhrystone, scales
    ):
        # Regression: empty or non-positive scale arrays used to survive
        # construction and fail deep inside predict_trace, after other
        # requests in the same submission had already run.
        events = flow.run(c8, dhrystone).events
        with pytest.raises(ValueError, match="scale"):
            api.PredictRequest(
                c8, events, dhrystone, kind="trace", scales=scales
            )

    @pytest.mark.parametrize("window_cycles", [0, -50])
    def test_trace_rejects_nonpositive_window_at_construction(
        self, flow, c8, dhrystone, window_cycles
    ):
        events = flow.run(c8, dhrystone).events
        with pytest.raises(ValueError, match="window_cycles"):
            api.PredictRequest(
                c8, events, dhrystone, kind="trace",
                scales=[0.9, 1.1], window_cycles=window_cycles,
            )

    def test_batched_equals_single_bitwise(self, autopower2, requests):
        service = api.PredictionService(autopower2)
        batched = [r.total for r in service.submit_many(requests)]
        single = [service.predict(r).total for r in requests]
        assert batched == single  # bitwise: coalescing must not change results

    def test_responses_in_request_order(self, autopower2, requests):
        service = api.PredictionService(autopower2)
        responses = service.submit_many(requests)
        assert [r.config_name for r in responses] == [
            r.config.name for r in requests
        ]
        assert [r.workload_name for r in responses] == [
            r.workload.name for r in requests
        ]

    def test_matches_model_loop_closely(self, autopower2, requests):
        service = api.PredictionService(autopower2)
        batched = [r.total for r in service.submit_many(requests)]
        loop = [
            autopower2.predict_total(r.config, r.events, r.workload)
            for r in requests
        ]
        np.testing.assert_allclose(batched, loop, rtol=1e-12, atol=0)

    def test_max_batch_size_chunks_without_changing_results(
        self, autopower2, requests
    ):
        unbounded = api.PredictionService(autopower2)
        bounded = api.PredictionService(autopower2, max_batch_size=3)
        assert [r.total for r in bounded.submit_many(requests)] == [
            r.total for r in unbounded.submit_many(requests)
        ]
        assert bounded.stats.model_calls > unbounded.stats.model_calls

    def test_works_for_every_method(self, fitted, requests):
        for name, model in fitted.items():
            service = api.PredictionService(model)
            responses = service.submit_many(requests[:6])
            assert all(r.total >= 0.0 for r in responses), name

    def test_mixed_kinds_one_submission(self, autopower2, requests, flow,
                                        c8, dhrystone):
        events = flow.run(c8, dhrystone).events
        mixed = [
            requests[0],
            api.PredictRequest(c8, events, dhrystone, kind="report"),
            api.PredictRequest(
                c8, events, dhrystone, kind="trace",
                scales=np.linspace(0.6, 1.4, 9),
            ),
            requests[1],
        ]
        service = api.PredictionService(autopower2)
        responses = service.submit_many(mixed)
        assert responses[0].total == service.predict(requests[0]).total
        assert responses[1].report is not None
        assert responses[1].total == pytest.approx(responses[1].report.total)
        assert responses[2].trace.shape == (9,)
        assert responses[3].kind == "total"

    def test_report_batching_matches_scalar_reports(self, autopower2, eval_cells):
        service = api.PredictionService(autopower2)
        reqs = [
            api.PredictRequest(c, e, w, kind="report")
            for c, w, e in eval_cells[:6]
        ]
        responses = service.submit_many(reqs)
        for (c, w, e), resp in zip(eval_cells[:6], responses):
            assert resp.report.total == pytest.approx(
                autopower2.predict_report(c, e, w).total, rel=1e-12
            )

    def test_report_unsupported_method_raises(self, fitted, requests):
        service = api.PredictionService(fitted["mcpat-calib"])
        req = api.PredictRequest(
            requests[0].config, requests[0].events, requests[0].workload,
            kind="report",
        )
        with pytest.raises(TypeError, match="report"):
            service.submit_many([req])

    def test_rejected_submission_runs_no_work_and_keeps_stats_clean(
        self, fitted, requests
    ):
        # An unservable kind is rejected before any model call, so a
        # mixed submission can't discard completed totals or leave the
        # counters claiming phantom in-flight requests.
        service = api.PredictionService(fitted["mcpat-calib"])
        trace_req = api.PredictRequest(
            requests[0].config, requests[0].events, requests[0].workload,
            kind="trace", scales=np.linspace(0.8, 1.2, 5),
        )
        with pytest.raises(TypeError, match="trace"):
            service.submit_many([requests[0], trace_req])
        assert service.stats.snapshot() == {
            "requests": 0, "responses": 0, "model_calls": 0,
            "batched_intervals": 0,
        }

    def test_stream_preserves_order_across_chunks(self, autopower2, requests):
        service = api.PredictionService(autopower2)
        streamed = list(service.stream(iter(requests), chunk_size=5))
        batched = service.submit_many(requests)
        assert [r.total for r in streamed] == [r.total for r in batched]

    def test_stream_bad_buffer_keeps_prior_responses_and_stats(
        self, fitted, requests
    ):
        # Pins the stream error semantics (documented on stream()): a bad
        # request in buffer N surfaces at that buffer's yield point; the
        # responses of earlier buffers were already yielded and stay
        # valid, the failing buffer runs no model work and contributes
        # nothing to stats, and later requests are never consumed.
        service = api.PredictionService(fitted["mcpat-calib"])
        bad = api.PredictRequest(
            requests[0].config, requests[0].events, requests[0].workload,
            kind="trace", scales=np.linspace(0.8, 1.2, 5),
        )  # mcpat-calib has no predict_trace -> TypeError
        consumed: list = []

        def feed():
            for request in requests[:4] + [bad] + requests[4:8]:
                consumed.append(request)
                yield request

        stream = service.stream(feed(), chunk_size=4)
        first_buffer = [next(stream) for _ in range(4)]
        direct = api.PredictionService(fitted["mcpat-calib"]).submit_many(
            requests[:4]
        )
        assert [r.total for r in first_buffer] == [r.total for r in direct]
        with pytest.raises(TypeError, match="trace"):
            next(stream)
        # Only the good first buffer is on the books ...
        expected_calls = len({r.config.name for r in requests[:4]})
        assert service.stats.snapshot() == {
            "requests": 4, "responses": 4, "model_calls": expected_calls,
            "batched_intervals": 4,
        }
        # ... and nothing past the failing buffer was pulled from the
        # iterable (4 good + 4 of the second buffer incl. the bad one).
        assert len(consumed) == 8

    def test_stats_count_coalescing(self, autopower2, requests):
        service = api.PredictionService(autopower2)
        service.submit_many(requests)
        n_configs = len({r.config.name for r in requests})
        assert service.stats.requests == len(requests)
        assert service.stats.responses == len(requests)
        assert service.stats.model_calls == n_configs
        assert service.stats.batched_intervals == len(requests)

    def test_concurrent_submit_many_keeps_stats_consistent(
        self, autopower2, requests
    ):
        # The re-entrancy contract the async gateway relies on: results
        # are per-call and the stats counters are applied atomically per
        # submission, so concurrent submitter threads can't drop or tear
        # increments.
        import threading

        service = api.PredictionService(autopower2)
        expected = [r.total for r in service.submit_many(requests)]
        results: dict[int, list] = {}

        def submit(slot: int) -> None:
            results[slot] = [r.total for r in service.submit_many(requests)]

        threads = [
            threading.Thread(target=submit, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for slot in range(4):
            assert results[slot] == expected
        snapshot = service.stats_snapshot()
        assert snapshot["requests"] == 5 * len(requests)
        assert snapshot["responses"] == 5 * len(requests)
        assert snapshot["batched_intervals"] == 5 * len(requests)

    def test_parallel_fanout_matches_serial(self, autopower2, requests):
        serial = api.PredictionService(autopower2)
        threaded = api.PredictionService(autopower2, n_jobs=2, backend="thread")
        assert [r.total for r in threaded.submit_many(requests)] == [
            r.total for r in serial.submit_many(requests)
        ]

    def test_mixing_workload_presence_rejected(self, autopower2, requests):
        service = api.PredictionService(autopower2)
        bad = api.PredictRequest(requests[0].config, requests[0].events, None)
        with pytest.raises(ValueError, match="workload"):
            service.submit_many([requests[0], bad])

    def test_report_chunk_workload_mix_rejected_before_any_model_call(
        self, autopower2, requests
    ):
        # Regression: a workload mix inside a *report* chunk used to
        # surface only while building report chunks — after every totals
        # chunk had already run and mutated the stats, discarding the
        # completed results.  The reject-before-work contract says the
        # whole submission fails up front with the stats untouched.
        service = api.PredictionService(autopower2)
        request = requests[0]
        mixed = [
            request,  # a totals request that would have run first
            api.PredictRequest(
                request.config, request.events, request.workload, kind="report"
            ),
            api.PredictRequest(request.config, request.events, None, kind="report"),
        ]
        with pytest.raises(ValueError, match="workload"):
            service.submit_many(mixed)
        assert service.stats.snapshot() == {
            "requests": 0, "responses": 0, "model_calls": 0,
            "batched_intervals": 0,
        }

    def test_max_batch_size_split_that_separates_a_mix_stays_accepted(
        self, fitted, requests
    ):
        # The mix check follows the exact chunks execution will use: when
        # max_batch_size happens to split the workload-carrying and
        # workload-free rows into different chunks, the submission is
        # servable and must stay accepted (semantics unchanged by moving
        # the check into _validate).
        service = api.PredictionService(fitted["mcpat"], max_batch_size=1)
        request = requests[0]
        bare = api.PredictRequest(request.config, request.events, None)
        responses = service.submit_many([request, bare])
        assert responses[0].total == service.predict(request).total
        assert responses[1].workload_name is None


class TestRunnerRegistryIntegration:
    def test_fit_method_resolves_display_names(self, flow, train_configs,
                                               workloads):
        from repro.experiments.runner import fit_method

        model = fit_method("McPAT-Calib", flow, train_configs, workloads)
        assert api.spec_for(model).name == "mcpat-calib"

    def test_runner_has_no_method_branches(self):
        import inspect

        from repro.experiments import runner

        source = inspect.getsource(runner)
        assert "if name ==" not in source
        assert "isinstance(model" not in source

    def test_evaluate_methods_matches_scalar_reference(self, flow, workloads):
        from repro.experiments.runner import evaluate_methods

        result = evaluate_methods(
            flow=flow, n_train=2, methods=("AutoPower", "McPAT-Calib"),
            workloads=tuple(workloads),
        )
        acc = result.methods["McPAT-Calib"]
        model = api.fit("mcpat-calib", flow=flow,
                        train_configs=[config_by_name(n) for n in result.train_names],
                        workloads=list(workloads))
        scalar = []
        for (cfg_name, wl_name), _ in zip(acc.labels, acc.y_pred):
            events = flow.run(
                config_by_name(cfg_name), workload_by_name(wl_name)
            ).events
            scalar.append(model.predict_total(config_by_name(cfg_name), events))
        np.testing.assert_allclose(acc.y_pred, scalar, rtol=1e-12, atol=0)
