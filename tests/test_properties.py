"""Property-based tests (hypothesis) for core data structures/invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scaling import ScalingPatternDetector
from repro.library.sram_compiler import SramCompiler
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import mape, pearson_r, r2_score, rmse
from repro.ml.tree import RegressionTree
from repro.vlsi.macro_mapping import MacroMapper

_SMALL = dict(max_examples=30, deadline=None)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


class TestMetricProperties:
    @given(st.lists(positive_floats, min_size=2, max_size=30))
    @settings(**_SMALL)
    def test_mape_zero_iff_exact(self, values):
        assert mape(values, values) == 0.0

    @given(
        st.lists(positive_floats, min_size=2, max_size=30),
        st.floats(min_value=1.01, max_value=3.0),
    )
    @settings(**_SMALL)
    def test_mape_of_uniform_relative_error(self, values, factor):
        scaled = [v * factor for v in values]
        np.testing.assert_allclose(
            mape(values, scaled), (factor - 1.0) * 100.0, rtol=1e-6
        )

    @given(st.lists(finite_floats, min_size=3, max_size=30))
    @settings(**_SMALL)
    def test_r2_of_exact_prediction_is_one(self, values):
        if len(set(values)) < 2:
            return
        assert r2_score(values, values) == 1.0

    @given(
        st.lists(
            st.tuples(finite_floats, finite_floats), min_size=3, max_size=30
        )
    )
    @settings(**_SMALL)
    def test_pearson_bounded(self, pairs):
        t = [a for a, _ in pairs]
        p = [b for _, b in pairs]
        r = pearson_r(t, p)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    @settings(**_SMALL)
    def test_rmse_nonnegative(self, values):
        shifted = [v + 1.0 for v in values]
        assert rmse(values, shifted) >= 0.0


class TestRidgeProperties:
    @given(
        st.integers(min_value=3, max_value=20),
        st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    )
    @settings(**_SMALL)
    def test_recovers_univariate_line(self, n, slope, intercept):
        X = np.arange(n, dtype=float).reshape(-1, 1)
        y = slope * X.ravel() + intercept
        model = RidgeRegression(alpha=1e-10).fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-5)

    @given(st.integers(min_value=2, max_value=15), st.integers(min_value=0, max_value=100))
    @settings(**_SMALL)
    def test_prediction_finite_on_random_data(self, n, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 4))
        y = rng.normal(size=n)
        model = RidgeRegression(alpha=1e-2).fit(X, y)
        assert np.isfinite(model.predict(X)).all()


class TestTreeProperties:
    @given(st.integers(min_value=5, max_value=60), st.integers(min_value=0, max_value=50))
    @settings(**_SMALL)
    def test_tree_predictions_within_target_hull(self, n, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        y = rng.uniform(-10, 10, size=n)
        tree = RegressionTree(max_depth=4, reg_lambda=0.0).fit(X, y)
        pred = tree.predict(rng.normal(size=(50, 3)) * 10)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @given(st.integers(min_value=5, max_value=40), st.integers(min_value=0, max_value=50))
    @settings(**_SMALL)
    def test_gbm_respects_target_hull(self, n, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 2))
        y = rng.uniform(0, 5, size=n)
        model = GradientBoostingRegressor(n_estimators=20).fit(X, y)
        pred = model.predict(rng.normal(size=(30, 2)) * 10)
        assert pred.min() >= y.min() - 1e-6
        assert pred.max() <= y.max() + 1e-6


class TestScalingDetectorProperties:
    @given(
        st.floats(min_value=0.5, max_value=100.0),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=16),
                st.integers(min_value=1, max_value=16),
            ),
            min_size=2,
            max_size=6,
            unique=True,
        ),
    )
    @settings(**_SMALL)
    def test_recovers_planted_product_law(self, k, points):
        a = [float(p[0]) for p in points]
        b = [float(p[1]) for p in points]
        targets = [k * x * y for x, y in zip(a, b)]
        detector = ScalingPatternDetector()
        law = detector.fit(targets, {"A": a, "B": b}, ("A", "B"))
        # The found law must reproduce the training targets exactly, even
        # if an equivalent smaller combination exists for these points.
        values = [{"A": x, "B": y} for x, y in zip(a, b)]
        for v, t in zip(values, targets):
            assert abs(law.evaluate(v) - t) / t < 1e-6


class TestMacroMapperProperties:
    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=4000),
    )
    @settings(**_SMALL)
    def test_mapping_covers_block(self, width, depth):
        mapper = MacroMapper(SramCompiler())
        mapping = mapper.map(width, depth)
        assert mapping.n_row * mapping.macro.width >= width
        assert mapping.n_col * mapping.macro.depth >= depth

    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=4000),
    )
    @settings(**_SMALL)
    def test_mapping_not_wasteful_in_rows(self, width, depth):
        # One fewer row of macros must not cover the width.
        mapper = MacroMapper(SramCompiler())
        mapping = mapper.map(width, depth)
        assert (mapping.n_row - 1) * mapping.macro.width < width
        assert (mapping.n_col - 1) * mapping.macro.depth < depth
