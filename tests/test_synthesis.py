"""Unit tests for repro.synthesis: gating policies, netlist, synthesizer."""

import pytest

from repro.arch.config import BOOM_CONFIGS, config_by_name
from repro.library.stdcell import default_library
from repro.rtl.generator import RtlGenerator
from repro.synthesis.clock_gating import GatingPolicy, policy_for
from repro.synthesis.netlist import ComponentNetlist
from repro.synthesis.synthesizer import Synthesizer


class TestGatingPolicy:
    def test_rate_bounds(self):
        policy = GatingPolicy(base_rate=0.8, size_slope=0.02, fanout=16)
        for registers in (1, 10, 1000, 100_000):
            assert 0.30 <= policy.gating_rate(registers) <= 0.96

    def test_bigger_banks_gate_more(self):
        policy = GatingPolicy(base_rate=0.8, size_slope=0.02, fanout=16)
        assert policy.gating_rate(10_000) > policy.gating_rate(100)

    def test_gating_cells_ceiling(self):
        policy = GatingPolicy(base_rate=0.8, size_slope=0.0, fanout=16)
        assert policy.gating_cells(0) == 0
        assert policy.gating_cells(1) == 1
        assert policy.gating_cells(17) == 2

    def test_zero_registers(self):
        policy = GatingPolicy(base_rate=0.8, size_slope=0.02, fanout=16)
        assert policy.gating_rate(0) == 0.0
        assert policy.gated_registers(0) == 0

    def test_component_overrides(self):
        assert policy_for("Regfile", "backend").base_rate > policy_for(
            "Other Logic", "backend"
        ).base_rate

    def test_domain_fallback(self):
        assert policy_for("ROB", "backend") is policy_for("RNU", "backend")

    def test_unknown_domain(self):
        with pytest.raises(ValueError):
            policy_for("ROB", "westside")

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            GatingPolicy(base_rate=1.2, size_slope=0.0, fanout=16)
        with pytest.raises(ValueError):
            GatingPolicy(base_rate=0.5, size_slope=0.0, fanout=0)


class TestComponentNetlist:
    def test_gating_rate_property(self):
        comp = ComponentNetlist(
            name="X", registers=100, gated_registers=80, gating_cells=5, comb_cells={}
        )
        assert comp.gating_rate == pytest.approx(0.8)
        assert comp.icg_ratio == pytest.approx(5 / 80)

    def test_gated_exceeding_total_rejected(self):
        with pytest.raises(ValueError):
            ComponentNetlist(
                name="X", registers=10, gated_registers=11, gating_cells=1, comb_cells={}
            )

    def test_gated_without_cells_rejected(self):
        with pytest.raises(ValueError):
            ComponentNetlist(
                name="X", registers=10, gated_registers=5, gating_cells=0, comb_cells={}
            )

    def test_zero_registers_gating_rate(self):
        comp = ComponentNetlist(
            name="X", registers=0, gated_registers=0, gating_cells=0, comb_cells={}
        )
        assert comp.gating_rate == 0.0
        assert comp.icg_ratio == 0.0


class TestSynthesizer:
    @pytest.fixture(scope="class")
    def netlists(self):
        lib = default_library()
        gen = RtlGenerator()
        synth = Synthesizer(lib)
        return {c.name: synth.synthesize(gen.generate(c)) for c in BOOM_CONFIGS}

    def test_register_counts_preserved(self, netlists):
        gen = RtlGenerator()
        for name in ("C1", "C8", "C15"):
            design = gen.generate(config_by_name(name))
            for comp in design.components:
                assert netlists[name].component(comp.name).registers == comp.registers

    def test_gating_rates_in_plausible_band(self, netlists):
        for netlist in netlists.values():
            assert 0.6 <= netlist.gating_rate <= 0.95

    def test_regfile_gates_more_than_other_logic(self, netlists):
        net = netlists["C8"]
        assert (
            net.component("Regfile").gating_rate
            > net.component("Other Logic").gating_rate
        )

    def test_comb_cells_mapped(self, netlists):
        comp = netlists["C8"].component("FU Pool")
        assert comp.total_comb_cells > 0
        assert set(comp.comb_cells) == {"nand2", "aoi22", "xor2", "mux2", "buf4"}

    def test_sram_positions_carried_through(self, netlists):
        assert len(netlists["C8"].component("IFU").sram_positions) == 3

    def test_deterministic(self):
        lib = default_library()
        synth = Synthesizer(lib)
        design = RtlGenerator().generate(config_by_name("C3"))
        assert synth.synthesize(design) == synth.synthesize(design)

    def test_total_gated_less_than_total(self, netlists):
        for net in netlists.values():
            assert 0 < net.total_gated_registers < net.total_registers

    def test_unknown_component_lookup(self, netlists):
        with pytest.raises(KeyError):
            netlists["C1"].component("Flux Capacitor")
